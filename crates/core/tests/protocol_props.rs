//! Property-based tests of the CSMA/DDCR station automaton, driven
//! manually against an ideal channel (no engine, so the properties are
//! about the protocol logic alone).

use ddcr_core::{DdcrConfig, DdcrStation, StaticAllocation};
use ddcr_sim::{
    Action, ClassId, Frame, MediumConfig, Message, MessageId, Observation, SourceId, Station,
    Ticks,
};
use proptest::prelude::*;

const SLOT: u64 = 512;

/// Drives `stations` until all queues drain (or the step cap), asserting
/// replica agreement at every slot; returns deliveries in channel order.
fn drive(
    stations: &mut [DdcrStation],
    mut arrivals: Vec<Message>,
    max_steps: u64,
) -> Vec<(MessageId, Ticks)> {
    arrivals.sort_by_key(|m| (m.arrival, m.id));
    let mut deliveries = Vec::new();
    let mut now = Ticks::ZERO;
    let mut next = 0usize;
    let mut step = 0u64;
    while next < arrivals.len() || stations.iter().any(|s| s.backlog() > 0) {
        assert!(step < max_steps, "failed to drain within {max_steps} slots");
        step += 1;
        while next < arrivals.len() && arrivals[next].arrival <= now {
            let m = arrivals[next];
            stations[m.source.0 as usize].deliver(m);
            next += 1;
        }
        let frames: Vec<Frame> = stations
            .iter_mut()
            .filter_map(|s| match s.poll(now) {
                Action::Transmit(f) => Some(f),
                Action::Idle => None,
            })
            .collect();
        let (obs, advance) = match frames.len() {
            0 => (Observation::Silence, Ticks(SLOT)),
            1 => (Observation::Busy(frames[0]), frames[0].duration()),
            _ => (Observation::Collision { survivor: None }, Ticks(SLOT)),
        };
        let next_free = now + advance;
        if let Observation::Busy(f) = obs {
            deliveries.push((f.message.id, next_free));
        }
        for s in stations.iter_mut() {
            s.observe(now, next_free, &obs);
        }
        let digests: Vec<String> = stations.iter().map(|s| s.shared_state_digest()).collect();
        for d in &digests[1..] {
            assert_eq!(&digests[0], d, "replica divergence at t = {now}");
        }
        now = next_free;
    }
    deliveries
}

fn stations(z: u32, c: u64) -> Vec<DdcrStation> {
    let config = DdcrConfig::for_sources(z, Ticks(c)).unwrap();
    let allocation = StaticAllocation::round_robin(config.static_tree, z).unwrap();
    (0..z)
        .map(|i| {
            DdcrStation::new(
                SourceId(i),
                config,
                allocation.clone(),
                MediumConfig::ethernet().overhead_bits,
            )
            .unwrap()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any batch of messages with in-horizon deadlines drains, exactly
    /// once each, with consistent replicas throughout.
    #[test]
    fn random_workloads_drain_exactly_once(
        z in 2u32..=6,
        specs in prop::collection::vec(
            (0u64..2_000_000, 200_000u64..6_000_000, 1_000u64..20_000),
            1..24,
        ),
    ) {
        let mut sts = stations(z, 100_000);
        let arrivals: Vec<Message> = specs
            .iter()
            .enumerate()
            .map(|(i, &(arrival, deadline, bits))| Message {
                id: MessageId(i as u64),
                source: SourceId(i as u32 % z),
                class: ClassId(0),
                bits,
                arrival: Ticks(arrival),
                deadline: Ticks(deadline),
            })
            .collect();
        let n = arrivals.len();
        let deliveries = drive(&mut sts, arrivals, 2_000_000);
        prop_assert_eq!(deliveries.len(), n);
        let mut ids: Vec<u64> = deliveries.iter().map(|(id, _)| id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), n, "duplicate deliveries");
    }

    /// A simultaneous burst whose absolute deadlines are pairwise separated
    /// by at least 2c (and all within the scheduling horizon) is delivered
    /// in exact EDF order — the distributed NP-EDF emulation in its
    /// cleanest observable form.
    #[test]
    fn separated_deadlines_deliver_in_edf_order(
        z in 2u32..=6,
        perm_seed in any::<u64>(),
        count in 2usize..=6,
    ) {
        let c = 100_000u64;
        let mut sts = stations(z, c);
        // Distinct deadline classes: d_i = (3 + 3i)·c, all well inside the
        // 64-class horizon.
        let mut order: Vec<usize> = (0..count).collect();
        // Deterministic shuffle from the seed.
        let mut s = perm_seed;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let arrivals: Vec<Message> = order
            .iter()
            .enumerate()
            .map(|(idx, &rank)| Message {
                id: MessageId(idx as u64),
                source: SourceId(idx as u32 % z),
                class: ClassId(0),
                bits: 8_000,
                arrival: Ticks(0),
                deadline: Ticks((3 + 3 * rank as u64) * c),
            })
            .collect();
        // Sources must be distinct for a pure cross-source EDF test; skip
        // cases where two messages share a source (local EDF handles those
        // trivially anyway).
        prop_assume!(count <= z as usize);
        let expected: Vec<u64> = {
            let mut sorted: Vec<&Message> = arrivals.iter().collect();
            sorted.sort_by_key(|m| m.absolute_deadline());
            sorted.iter().map(|m| m.id.0).collect()
        };
        let deliveries = drive(&mut sts, arrivals, 500_000);
        let got: Vec<u64> = deliveries.iter().map(|(id, _)| id.0).collect();
        prop_assert_eq!(got, expected, "EDF order violated");
    }

    /// Idle stations never transmit and never collide, whatever the
    /// configuration.
    #[test]
    fn idle_network_stays_silent(
        z in 2u32..=8,
        c in 10_000u64..1_000_000,
        theta in 0u64..8,
    ) {
        let config = DdcrConfig::for_sources(z, Ticks(c))
            .unwrap()
            .with_compressed_time(theta);
        let allocation = StaticAllocation::one_per_source(config.static_tree, z).unwrap();
        let mut sts: Vec<DdcrStation> = (0..z)
            .map(|i| DdcrStation::new(SourceId(i), config, allocation.clone(), 208).unwrap())
            .collect();
        let mut now = Ticks::ZERO;
        for _ in 0..200 {
            for s in sts.iter_mut() {
                prop_assert_eq!(s.poll(now), Action::Idle);
            }
            let next_free = now + Ticks(SLOT);
            for s in sts.iter_mut() {
                s.observe(now, next_free, &Observation::Silence);
            }
            now = next_free;
        }
    }
}
