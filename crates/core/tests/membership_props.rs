//! Property-based tests of the dynamic membership layer: random
//! join/leave/admit interleavings must preserve the leaf-partition
//! invariants and never let an admission push an incumbent flow past its
//! deadline — the governing invariant of the `ddcr serve` admission
//! contract.

use ddcr_core::{AdmissionDecision, DdcrConfig, FlowRequest, Membership};
use ddcr_sim::{MediumConfig, SourceId, Ticks};
use proptest::prelude::*;

/// One scripted operation against the fabric.
#[derive(Debug, Clone)]
enum Op {
    Join(u32),
    Leave(u32),
    Admit(u32),
}

fn op_strategy(z: u32) -> impl Strategy<Value = Op> {
    (0u32..3, 0..z).prop_map(|(kind, station)| match kind {
        0 => Op::Join(station),
        1 => Op::Leave(station),
        _ => Op::Admit(station),
    })
}

fn fabric(z: u32, join_nu: u64) -> Membership {
    let config = DdcrConfig::for_sources(z, Ticks(100_000)).unwrap();
    Membership::new(config, MediumConfig::ethernet(), z, join_nu).unwrap()
}

fn modest_flow(station: u32, n: usize) -> FlowRequest {
    FlowRequest {
        source: SourceId(station),
        name: format!("f{n}"),
        bits: 4_000,
        deadline: Ticks(50_000_000),
        arrivals: 1,
        window: Ticks(10_000_000),
    }
}

/// Replays a script; invalid operations (double join, absent leave,
/// admit-before-join, pool exhaustion) must surface as typed errors, never
/// panics, and leave the state untouched.
fn run_script(m: &mut Membership, ops: &[Op]) {
    for (n, op) in ops.iter().enumerate() {
        match *op {
            Op::Join(s) => {
                let _ = m.join(SourceId(s));
            }
            Op::Leave(s) => {
                let _ = m.leave(SourceId(s));
            }
            Op::Admit(s) => {
                let _ = m.admit(&modest_flow(s, n));
            }
        }
    }
}

/// The partition invariants the engine's correctness rests on.
fn assert_partition_invariants(m: &Membership, z: u32) {
    let allocation = m.allocation();
    let total = allocation.leaves();
    // Every leaf is owned by at most one station, and the ownership map is
    // consistent with each station's own index list.
    let mut owned = 0u64;
    for s in 0..z {
        let source = SourceId(s);
        let indices = allocation.indices_of(source);
        assert_eq!(indices.len() as u64, allocation.nu(source));
        owned += indices.len() as u64;
        for &leaf in indices {
            assert_eq!(
                allocation.owner_of(leaf),
                Some(source),
                "leaf {leaf} owner map inconsistent with indices_of({s})"
            );
        }
        // Absent stations hold no leaves (a leave reclaims everything).
        if !m.is_present(source) {
            assert_eq!(allocation.nu(source), 0, "absent station {s} holds leaves");
        }
    }
    // Owned + free partitions the leaf set exactly.
    let free = allocation.free_leaves();
    assert_eq!(owned + free.len() as u64, total, "leaves leaked or invented");
    for &leaf in &free {
        assert_eq!(allocation.owner_of(leaf), None, "free leaf {leaf} has an owner");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary join/leave/admit interleavings preserve the partition
    /// invariants and the admission safety invariant (the admitted set
    /// stays feasible — no deadline can be missed analytically).
    #[test]
    fn random_churn_preserves_partition_and_admission_invariants(
        z in 2u32..6,
        join_nu in 1u64..3,
        ops in prop::collection::vec(op_strategy(5), 1..40),
    ) {
        let ops: Vec<Op> = ops
            .into_iter()
            .map(|op| match op {
                Op::Join(s) => Op::Join(s % z),
                Op::Leave(s) => Op::Leave(s % z),
                Op::Admit(s) => Op::Admit(s % z),
            })
            .collect();
        let mut m = fabric(z, join_nu);
        run_script(&mut m, &ops);
        assert_partition_invariants(&m, z);
        // No force_admit in the script, so the invariant checker must pass:
        // admitted sources present and seated, admitted set feasible.
        m.check_invariants().unwrap();
        prop_assert_eq!(m.safety_violations(), 0);
    }

    /// The same script always produces the same fabric: partition, admitted
    /// set, and member set are all deterministic functions of the ops.
    #[test]
    fn membership_is_deterministic(
        z in 2u32..5,
        ops in prop::collection::vec(op_strategy(4), 1..30),
    ) {
        let ops: Vec<Op> = ops
            .into_iter()
            .map(|op| match op {
                Op::Join(s) => Op::Join(s % z),
                Op::Leave(s) => Op::Leave(s % z),
                Op::Admit(s) => Op::Admit(s % z),
            })
            .collect();
        let mut a = fabric(z, 1);
        let mut b = fabric(z, 1);
        run_script(&mut a, &ops);
        run_script(&mut b, &ops);
        for s in 0..z {
            prop_assert_eq!(
                a.allocation().indices_of(SourceId(s)),
                b.allocation().indices_of(SourceId(s))
            );
            prop_assert_eq!(a.is_present(SourceId(s)), b.is_present(SourceId(s)));
        }
        prop_assert_eq!(a.admitted(), b.admitted());
    }

    /// Admission monotonicity: an admitted incumbent stays feasible no
    /// matter what later applicants ask for — rejections really protect it.
    #[test]
    fn incumbents_survive_any_applicant(
        bits in 1_000u64..64_000,
        deadline in 200_000u64..2_000_000,
        arrivals in 1u64..200,
        window in 100_000u64..1_000_000,
    ) {
        let mut m = fabric(3, 1);
        m.join(SourceId(0)).unwrap();
        m.join(SourceId(1)).unwrap();
        let d = m.admit(&modest_flow(0, 0)).unwrap();
        prop_assert!(matches!(d, AdmissionDecision::Admitted { .. }));
        let applicant = FlowRequest {
            source: SourceId(1),
            name: "applicant".into(),
            bits,
            deadline: Ticks(deadline),
            arrivals,
            window: Ticks(window),
        };
        let _ = m.admit(&applicant).unwrap();
        // Whatever the verdict, the whole admitted set is still feasible.
        m.check_invariants().unwrap();
        let report = m.evaluate().unwrap();
        prop_assert!(report.feasible());
    }
}
