//! Property-based tests of the feasibility conditions' structure: the
//! bound `B_DDCR` must respond monotonically to every knob a designer can
//! turn, or the dimensioning search built on it is meaningless.

use ddcr_core::{feasibility, DdcrConfig, StaticAllocation};
use ddcr_sim::{ClassId, MediumConfig, SourceId, Ticks};
use ddcr_traffic::{DensityBound, MessageClass, MessageSet};
use proptest::prelude::*;

fn make_set(z: u32, bits: u64, a: u64, w: u64, d: u64) -> MessageSet {
    let classes = (0..z)
        .map(|s| MessageClass {
            id: ClassId(s),
            name: format!("c{s}"),
            source: SourceId(s),
            bits,
            deadline: Ticks(d),
            density: DensityBound::new(a, Ticks(w)).unwrap(),
        })
        .collect();
    MessageSet::new(z, classes).unwrap()
}

fn bound_of(set: &MessageSet, nu_round_robin: bool) -> f64 {
    let medium = MediumConfig::ethernet();
    let c = ddcr_core::network::recommended_class_width(set, 64, &medium);
    let config = DdcrConfig::for_sources(set.sources(), c).unwrap();
    let allocation = if nu_round_robin {
        StaticAllocation::round_robin(config.static_tree, set.sources()).unwrap()
    } else {
        StaticAllocation::one_per_source(config.static_tree, set.sources()).unwrap()
    };
    feasibility::evaluate(set, &config, &allocation, &medium)
        .unwrap()
        .per_class[0]
        .bound
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// More interfering sources can only raise the bound.
    #[test]
    fn bound_monotone_in_sources(
        z in 2u32..6,
        bits in 1_000u64..16_000,
        a in 1u64..4,
        w in 500_000u64..4_000_000,
        d in 500_000u64..4_000_000,
    ) {
        let small = bound_of(&make_set(z, bits, a, w, d), true);
        let large = bound_of(&make_set(z + 1, bits, a, w, d), true);
        prop_assert!(large >= small - 1e-6, "sources {z}→{}: {small} → {large}", z + 1);
    }

    /// A higher arrival density (same window) can only raise the bound.
    #[test]
    fn bound_monotone_in_density(
        z in 2u32..5,
        bits in 1_000u64..16_000,
        a in 1u64..4,
        w in 500_000u64..4_000_000,
        d in 500_000u64..4_000_000,
    ) {
        let sparse = bound_of(&make_set(z, bits, a, w, d), true);
        let dense = bound_of(&make_set(z, bits, a + 1, w, d), true);
        prop_assert!(dense >= sparse - 1e-6);
    }

    /// Longer messages can only raise the bound.
    #[test]
    fn bound_monotone_in_length(
        z in 2u32..5,
        bits in 1_000u64..16_000,
        a in 1u64..4,
        w in 500_000u64..4_000_000,
        d in 500_000u64..4_000_000,
    ) {
        let short = bound_of(&make_set(z, bits, a, w, d), true);
        let long = bound_of(&make_set(z, bits + 4_000, a, w, d), true);
        prop_assert!(long >= short - 1e-6);
    }

    /// More static indices per source (round-robin vs one-per-source) can
    /// only shrink `v(M)` and hence the bound.
    #[test]
    fn more_indices_never_hurt(
        z in 2u32..6,
        bits in 1_000u64..16_000,
        a in 1u64..4,
        w in 500_000u64..4_000_000,
        d in 500_000u64..4_000_000,
    ) {
        let set = make_set(z, bits, a, w, d);
        let one = bound_of(&set, false);
        let many = bound_of(&set, true);
        prop_assert!(many <= one + 1e-6, "nu>1 worsened the bound: {one} → {many}");
    }

    /// The bound decomposition is consistent: transmission + slot·search
    /// equals the total, and the transmission fraction is in [0, 1].
    #[test]
    fn decomposition_is_consistent(
        z in 2u32..6,
        bits in 1_000u64..16_000,
        a in 1u64..4,
        w in 500_000u64..4_000_000,
        d in 500_000u64..4_000_000,
    ) {
        let set = make_set(z, bits, a, w, d);
        let medium = MediumConfig::ethernet();
        let c = ddcr_core::network::recommended_class_width(&set, 64, &medium);
        let config = DdcrConfig::for_sources(z, c).unwrap();
        let allocation = StaticAllocation::round_robin(config.static_tree, z).unwrap();
        let report = feasibility::evaluate(&set, &config, &allocation, &medium).unwrap();
        for cl in &report.per_class {
            let rebuilt = cl.transmission_ticks as f64
                + medium.slot_ticks as f64 * (cl.s1_slots + cl.s2_slots);
            prop_assert!((rebuilt - cl.bound).abs() < 1e-6);
            let frac = cl.transmission_fraction();
            prop_assert!((0.0..=1.0).contains(&frac));
            prop_assert!((cl.search_slots - (cl.s1_slots + cl.s2_slots)).abs() < 1e-9);
            prop_assert_eq!(cl.feasible, cl.slack() >= 0.0);
        }
    }
}
