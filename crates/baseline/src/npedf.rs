//! Centralized non-preemptive EDF — the contention-free oracle.
//!
//! Jeffay, Stanat & Martel [20] showed centralized NP-EDF optimal for the
//! centralized variant of HRTDM under periodic/sporadic arrivals; the paper
//! positions CSMA/DDCR as its *distributed emulation*. This oracle models a
//! single scheduler with global queue knowledge and zero contention
//! overhead: whenever the channel is free, the globally
//! earliest-deadline pending message is transmitted. It lower-bounds the
//! latency any distributed MAC can achieve on the same workload, so
//! experiment E8 uses it as the floor of the comparison.

use ddcr_sim::{Action, Frame, HoldHint, Message, Observation, SourceId, Station, Ticks, WakeHint};
use std::collections::VecDeque;

/// The centralized NP-EDF oracle: one [`Station`] that owns every queue.
///
/// Attach it as the only station and route **all** sources' messages to
/// source index 0 — or, more conveniently, use
/// [`NpEdfOracle::run_schedule`], which rewrites the schedule and returns
/// channel statistics directly.
///
/// # Examples
///
/// ```
/// use ddcr_baseline::NpEdfOracle;
/// use ddcr_sim::{ClassId, MediumConfig, Message, MessageId, SourceId, Ticks};
///
/// # fn main() -> Result<(), ddcr_sim::SimError> {
/// let schedule = vec![Message {
///     id: MessageId(0), source: SourceId(3), class: ClassId(0),
///     bits: 8_000, arrival: Ticks(0), deadline: Ticks(1_000_000),
/// }];
/// let stats = NpEdfOracle::run_schedule(
///     MediumConfig::ethernet(), schedule, Ticks(10_000_000))?;
/// assert_eq!(stats.deliveries.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct NpEdfOracle {
    overhead_bits: u64,
    /// Global queue, EDF order (deadline, arrival, id); a deque so the
    /// per-delivery head pop is O(1).
    queue: VecDeque<Message>,
}

impl NpEdfOracle {
    /// Creates the oracle for a given medium.
    pub fn new(medium: ddcr_sim::MediumConfig) -> Self {
        NpEdfOracle {
            overhead_bits: medium.overhead_bits,
            queue: VecDeque::new(),
        }
    }

    /// Runs a whole schedule through the oracle and returns the channel
    /// statistics. Message source ids are preserved in the deliveries even
    /// though a single scheduler drives the channel.
    ///
    /// # Errors
    ///
    /// Returns [`ddcr_sim::SimError`] if the run exceeds `max` ticks.
    pub fn run_schedule(
        medium: ddcr_sim::MediumConfig,
        schedule: Vec<Message>,
        max: Ticks,
    ) -> Result<ddcr_sim::ChannelStats, ddcr_sim::SimError> {
        let mut engine = ddcr_sim::Engine::new(medium)?;
        engine.add_station(Box::new(NpEdfOracle::new(medium)));
        // The oracle is station 0; reroute arrivals to it while keeping the
        // original source visible in the message itself... the engine keys
        // delivery on `message.source`, so rewrite to 0 but keep a copy of
        // the original id in `class`-preserving fields. Since `Message` is
        // plain data, the delivered records keep whatever we set here; we
        // deliberately keep the original source so per-source stats remain
        // meaningful, and instead attach the oracle as the station for
        // index 0..z by rewriting below.
        let rewritten: Vec<Message> = schedule
            .into_iter()
            .map(|mut m| {
                m.source = SourceId(0);
                m
            })
            .collect();
        engine.add_arrivals(rewritten)?;
        engine.run_to_completion(max)?;
        Ok(engine.into_stats())
    }
}

impl Station for NpEdfOracle {
    fn deliver(&mut self, message: Message) {
        let key = |m: &Message| (m.absolute_deadline(), m.arrival, m.id);
        let k = key(&message);
        let pos = self.queue.partition_point(|m| key(m) <= k);
        self.queue.insert(pos, message);
    }

    fn poll(&mut self, _now: Ticks) -> Action {
        match self.queue.front() {
            Some(&head) => Action::Transmit(Frame::new(head, head.bits + self.overhead_bits)),
            None => Action::Idle,
        }
    }

    fn observe(&mut self, _now: Ticks, _next_free: Ticks, observation: &Observation) {
        if let Observation::Busy(frame) = observation {
            if self.queue.front().map(|m| m.id) == Some(frame.message.id) {
                self.queue.pop_front();
            }
        }
    }

    fn backlog(&self) -> usize {
        self.queue.len()
    }

    fn next_ready(&self, now: Ticks) -> Option<Ticks> {
        // The oracle transmits whenever it holds work and sleeps otherwise;
        // silence carries no protocol state for it.
        if self.queue.is_empty() {
            None
        } else {
            Some(now)
        }
    }

    fn skip_silence(&mut self, _from: Ticks, _slots: u64, _slot: Ticks) {
        // Silence observations are a no-op (see `observe`).
    }

    fn hold_hint(&self, _now: Ticks) -> HoldHint {
        // The oracle transmits its head unconditionally whenever it holds
        // work: a drain of the whole queue is one committed busy run.
        if self.queue.is_empty() {
            HoldHint::Quiet(u64::MAX)
        } else {
            HoldHint::Hold(self.queue.len() as u64)
        }
    }

    fn skip_busy(&mut self, _from: Ticks, _frames: &[Frame], _slot: Ticks) {
        // Foreign busy slots are a no-op: message ids are globally unique,
        // so another station's frame can never match this queue's head.
    }

    fn label(&self) -> String {
        "np-edf-oracle".to_owned()
    }

    fn wake_hint(&self) -> WakeHint {
        // With an empty queue the oracle is inert until the next `deliver`:
        // poll() is Idle and `observe` only ever pops this queue's own head
        // (impossible while empty), so the batched catch-up is trivially
        // exact.
        if self.queue.is_empty() {
            WakeHint::Dormant
        } else {
            WakeHint::Active
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddcr_sim::{ClassId, MediumConfig, MessageId};

    fn msg(id: u64, arrival: u64, deadline: u64) -> Message {
        Message {
            id: MessageId(id),
            source: SourceId((id % 4) as u32),
            class: ClassId(0),
            bits: 8_000,
            arrival: Ticks(arrival),
            deadline: Ticks(deadline),
        }
    }

    #[test]
    fn serves_globally_earliest_deadline() {
        let schedule = vec![
            msg(0, 0, 50_000_000),
            msg(1, 0, 1_000_000),
            msg(2, 0, 9_000_000),
        ];
        let stats =
            NpEdfOracle::run_schedule(MediumConfig::ethernet(), schedule, Ticks(100_000_000))
                .unwrap();
        let order: Vec<u64> = stats.deliveries.iter().map(|d| d.message.id.0).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn zero_contention_overhead() {
        let schedule: Vec<Message> = (0..10).map(|i| msg(i, 0, 100_000_000)).collect();
        let stats =
            NpEdfOracle::run_schedule(MediumConfig::ethernet(), schedule, Ticks(1_000_000_000))
                .unwrap();
        assert_eq!(stats.collisions, 0);
        assert_eq!(stats.deliveries.len(), 10);
        // Back-to-back transmissions: completion time = 10 frames exactly.
        let wire = 8_000 + MediumConfig::ethernet().overhead_bits;
        assert_eq!(
            stats.deliveries.last().unwrap().completed_at,
            Ticks(10 * wire)
        );
    }

    #[test]
    fn tied_deadlines_serve_fifo_then_id_even_across_pops() {
        // Six messages with the same absolute deadline: four queued up
        // front, two landing mid-drain with a later arrival. The rotated
        // deque must keep the (arrival, id) tie-break exact.
        let mut schedule: Vec<Message> = (0..4).map(|i| msg(i, 0, 10_000_000)).collect();
        schedule.extend((4..6).map(|i| Message {
            arrival: Ticks(1_000),
            deadline: Ticks(9_999_000), // same DM = 10_000_000
            ..msg(i, 0, 0)
        }));
        let stats =
            NpEdfOracle::run_schedule(MediumConfig::ethernet(), schedule, Ticks(100_000_000))
                .unwrap();
        let order: Vec<u64> = stats.deliveries.iter().map(|d| d.message.id.0).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn non_preemptive_blocking_is_modelled() {
        // A long low-priority frame started first blocks an urgent one —
        // the unavoidable inversion the paper notes for any non-preemptable
        // channel.
        let long = Message {
            bits: 96_000,
            ..msg(0, 0, 100_000_000)
        };
        let urgent = msg(1, 10, 200_000);
        let stats = NpEdfOracle::run_schedule(
            MediumConfig::ethernet(),
            vec![long, urgent],
            Ticks(1_000_000_000),
        )
        .unwrap();
        assert_eq!(stats.deliveries[0].message.id, MessageId(0));
        assert!(stats.deliveries[1].completed_at > Ticks(96_000));
    }
}
