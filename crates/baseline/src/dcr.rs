//! CSMA/DCR — the 802.3D deterministic collision resolution protocol
//! (Le Lann & Rolin, 1984), the industrial ancestor of CSMA/DDCR's STs.
//!
//! Identical to CSMA-CD in the absence of collisions. On a collision, every
//! station enters a deterministic balanced m-ary tree search over the
//! statically allocated station indices (one leaf per station here);
//! stations that were part of the collision transmit when their leaf is
//! isolated, everyone else defers until the search (an "epoch") completes.
//! Deterministic, so bounded resolution time — but FCFS with respect to
//! deadlines: no deadline-class structure, which is precisely what
//! CSMA/DDCR adds on top.

use crate::queue::{LocalQueue, QueueDiscipline};
use ddcr_core::mts::{MtsEvent, MtsSearch, SlotOutcome};
use ddcr_sim::{Action, Frame, HoldHint, Message, Observation, SourceId, Station, Ticks};
use ddcr_tree::TreeShape;
use serde::{Deserialize, Serialize};

/// When may a station join an ongoing collision-resolution epoch? The
/// taxonomy of the tree-protocol literature the paper cites
/// (Mathys & Flajolet: "free or blocked channel access").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AccessMode {
    /// Only the stations that collided participate; everyone else defers
    /// until the epoch completes (classical CSMA/DCR, better worst case).
    #[default]
    Blocked,
    /// A station with a pending message joins the search as soon as its
    /// leaf is probed, even if it was not part of the opening collision
    /// (better mean delay, worse tail — the classical tradeoff).
    Free,
}

/// Per-station counters for the CSMA/DCR baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DcrCounters {
    /// Tree-search epochs this station participated in.
    pub epochs: u64,
    /// Frames successfully transmitted.
    pub transmitted: u64,
    /// Probe slots observed while resolving.
    pub probe_slots: u64,
}

/// Protocol phase.
#[derive(Debug, Clone)]
enum Phase {
    /// CSMA-CD behaviour while no collision is unresolved.
    Normal,
    /// Deterministic tree search in progress.
    Resolving(MtsSearch),
}

/// A station running CSMA/DCR (802.3D).
///
/// # Examples
///
/// ```
/// use ddcr_baseline::{DcrStation, QueueDiscipline};
/// use ddcr_sim::{MediumConfig, SourceId};
///
/// # fn main() -> Result<(), ddcr_tree::TreeError> {
/// let station = DcrStation::new(
///     SourceId(1),
///     8, // stations on the bus
///     MediumConfig::ethernet(),
///     QueueDiscipline::Fifo,
/// )?;
/// assert_eq!(station.counters().epochs, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DcrStation {
    source: SourceId,
    tree: TreeShape,
    overhead_bits: u64,
    queue: LocalQueue,
    phase: Phase,
    access: AccessMode,
    /// Whether this station was part of the collision that opened the
    /// current epoch (and still owes a transmission).
    active_in_epoch: bool,
    /// Whether this station transmitted in the slot being observed.
    transmitting: bool,
    counters: DcrCounters,
}

impl DcrStation {
    /// Creates a station on a bus with `stations` total stations; the
    /// resolution tree is the smallest binary tree with at least that many
    /// leaves, and this station's leaf is its source id.
    ///
    /// # Errors
    ///
    /// Returns [`ddcr_tree::TreeError`] if a tree cannot be built.
    pub fn new(
        source: SourceId,
        stations: u32,
        medium: ddcr_sim::MediumConfig,
        discipline: QueueDiscipline,
    ) -> Result<Self, ddcr_tree::TreeError> {
        let mut n = 1u32;
        while 2u64.pow(n) < u64::from(stations) {
            n += 1;
        }
        Ok(DcrStation {
            source,
            tree: TreeShape::new(2, n)?,
            overhead_bits: medium.overhead_bits,
            queue: LocalQueue::new(discipline),
            phase: Phase::Normal,
            access: AccessMode::Blocked,
            active_in_epoch: false,
            transmitting: false,
            counters: DcrCounters::default(),
        })
    }

    /// Switches the channel-access rule (blocked vs free, Mathys–Flajolet).
    pub fn with_access_mode(mut self, access: AccessMode) -> Self {
        self.access = access;
        self
    }

    /// Counters accumulated so far.
    pub fn counters(&self) -> DcrCounters {
        self.counters
    }

    fn frame(&self, msg: Message) -> Frame {
        Frame::new(msg, msg.bits + self.overhead_bits)
    }

    fn note_success(&mut self, frame: &Frame) {
        if frame.message.source == self.source
            && self.queue.pop_if(frame.message.id).is_some()
        {
            self.counters.transmitted += 1;
            self.active_in_epoch = false;
        }
    }
}

impl Station for DcrStation {
    fn deliver(&mut self, message: Message) {
        self.queue.push(message);
    }

    fn poll(&mut self, _now: Ticks) -> Action {
        self.transmitting = false;
        match &self.phase {
            Phase::Normal => match self.queue.head() {
                Some(&head) => {
                    self.transmitting = true;
                    Action::Transmit(self.frame(head))
                }
                None => Action::Idle,
            },
            Phase::Resolving(search) => {
                // Free access: late messages join the epoch at their leaf.
                let may_join = match self.access {
                    AccessMode::Blocked => self.active_in_epoch,
                    AccessMode::Free => self.active_in_epoch || !self.queue.is_empty(),
                };
                if !may_join {
                    return Action::Idle;
                }
                let Some(interval) = search.current() else {
                    return Action::Idle;
                };
                let (Some(&head), true) = (
                    self.queue.head(),
                    interval.contains(u64::from(self.source.0)),
                ) else {
                    return Action::Idle;
                };
                self.transmitting = true;
                Action::Transmit(self.frame(head))
            }
        }
    }

    fn observe(&mut self, _now: Ticks, _next_free: Ticks, observation: &Observation) {
        let (outcome, success_frame) = match observation {
            Observation::Silence => (SlotOutcome::Empty, None),
            Observation::Busy(f) => (SlotOutcome::Success, Some(*f)),
            Observation::Collision { survivor } => (SlotOutcome::Collision, *survivor),
            // An erased frame is indistinguishable from a collision:
            // channel held, nothing decoded, transmitter retries.
            Observation::Garbled => (SlotOutcome::Collision, None),
        };
        if let Some(frame) = success_frame {
            self.note_success(&frame);
        }
        match std::mem::replace(&mut self.phase, Phase::Normal) {
            Phase::Normal => {
                if outcome == SlotOutcome::Collision {
                    // Epoch opens: participants are exactly the stations
                    // that transmitted into the collision.
                    self.active_in_epoch = self.transmitting;
                    self.counters.epochs += u64::from(self.transmitting);
                    self.phase = Phase::Resolving(MtsSearch::new(self.tree));
                }
                // else stay Normal
            }
            Phase::Resolving(mut search) => {
                self.counters.probe_slots += 1;
                match search.feed(outcome) {
                    MtsEvent::Continue => self.phase = Phase::Resolving(search),
                    MtsEvent::LeafCollision { .. } => {
                        // A conforming network cannot collide on a
                        // single-owner leaf, but an injected channel fault
                        // (corrupted slot) reads as one. The probe already
                        // consumed the leaf; the owner keeps its message
                        // and retries after the epoch, so resolution stays
                        // live instead of panicking on interference.
                        if search.is_done() {
                            self.active_in_epoch = false;
                            self.phase = Phase::Normal;
                        } else {
                            self.phase = Phase::Resolving(search);
                        }
                    }
                    MtsEvent::Done => {
                        self.active_in_epoch = false;
                        self.phase = Phase::Normal;
                    }
                }
            }
        }
        self.transmitting = false;
    }

    fn backlog(&self) -> usize {
        self.queue.len()
    }

    fn next_ready(&self, now: Ticks) -> Option<Ticks> {
        match self.phase {
            // Idle in Normal phase: silence observations are no-ops, so the
            // station sleeps until its next delivery.
            Phase::Normal if self.queue.is_empty() => None,
            // Holding work, or mid-epoch (silence slots advance the tree
            // search): every slot matters.
            _ => Some(now),
        }
    }

    fn skip_silence(&mut self, _from: Ticks, _slots: u64, _slot: Ticks) {
        // Only reachable while Normal with an empty queue (see
        // `next_ready`), where a silence observation changes nothing.
    }

    fn hold_hint(&self, _now: Ticks) -> HoldHint {
        match (&self.phase, self.queue.is_empty()) {
            // A backlogged station in Normal phase streams its queue: each
            // uncontested success pops the head and stays Normal (only a
            // collision opens an epoch).
            (Phase::Normal, false) => HoldHint::Hold(self.queue.len() as u64),
            // Nothing to send: `poll` is Idle in every phase, and busy
            // slots are absorbed exactly by `skip_busy`.
            (_, true) => HoldHint::Quiet(u64::MAX),
            // Mid-epoch with pending work: this station may transmit the
            // moment its leaf is probed.
            (Phase::Resolving(_), false) => HoldHint::Contend,
        }
    }

    fn skip_busy(&mut self, from: Ticks, frames: &[Frame], _slot: Ticks) {
        match self.phase {
            // Foreign successes change nothing in Normal phase —
            // `note_success` only pops this station's own frames.
            Phase::Normal => {}
            // Mid-epoch, every success advances the tree search: replay.
            Phase::Resolving(_) => {
                let mut at = from;
                for frame in frames {
                    let next_free = at + frame.duration();
                    self.observe(at, next_free, &Observation::Busy(*frame));
                    at = next_free;
                }
            }
        }
    }

    fn label(&self) -> String {
        format!("dcr:{}", self.source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddcr_sim::{ClassId, Engine, MediumConfig, MessageId};

    fn msg(id: u64, source: u32, arrival: u64, deadline: u64) -> Message {
        Message {
            id: MessageId(id),
            source: SourceId(source),
            class: ClassId(0),
            bits: 8_000,
            arrival: Ticks(arrival),
            deadline: Ticks(deadline),
        }
    }

    fn network(z: u32) -> Engine {
        let medium = MediumConfig::ethernet();
        let mut engine = Engine::new(medium).unwrap();
        for i in 0..z {
            engine.add_station(Box::new(
                DcrStation::new(SourceId(i), z, medium, QueueDiscipline::Fifo).unwrap(),
            ));
        }
        engine
    }

    #[test]
    fn collision_resolves_in_index_order() {
        let mut e = network(4);
        e.add_arrivals([msg(0, 3, 0, 10_000_000), msg(1, 1, 0, 10_000_000)])
            .unwrap();
        e.run_to_completion(Ticks(100_000_000)).unwrap();
        let d = &e.stats().deliveries;
        assert_eq!(d.len(), 2);
        // Deterministic: station 1 (lower index) before station 3.
        assert_eq!(d[0].message.source, SourceId(1));
        assert_eq!(d[1].message.source, SourceId(3));
    }

    #[test]
    fn deterministic_bounded_resolution() {
        // All 8 stations collide; the epoch must finish within the
        // tree-search bound ξ_8^8 + 1 probes plus 8 transmissions.
        let mut e = network(8);
        e.add_arrivals((0..8).map(|i| msg(i, i as u32, 0, 100_000_000)))
            .unwrap();
        e.run_to_completion(Ticks(1_000_000_000)).unwrap();
        assert_eq!(e.stats().deliveries.len(), 8);
        // ξ_8^8 = 7 collision slots for the fully active 8-leaf binary
        // tree (one per internal node); the initial collision is the root,
        // the remaining 6 occur during the search.
        assert_eq!(e.stats().collisions, 7);
    }

    #[test]
    fn runs_are_reproducible() {
        let run = || {
            let mut e = network(4);
            e.add_arrivals((0..6).map(|i| msg(i, (i % 4) as u32, 0, 100_000_000)))
                .unwrap();
            e.run_to_completion(Ticks(1_000_000_000)).unwrap();
            e.stats()
                .deliveries
                .iter()
                .map(|d| (d.message.id, d.completed_at))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn free_access_lets_late_arrivals_join_the_epoch() {
        let medium = MediumConfig::ethernet();
        let run = |mode: AccessMode| {
            let mut e = Engine::new(medium).unwrap();
            for i in 0..4u32 {
                e.add_station(Box::new(
                    DcrStation::new(SourceId(i), 4, medium, QueueDiscipline::Fifo)
                        .unwrap()
                        .with_access_mode(mode),
                ));
            }
            // Sources 0 and 3 collide at t = 0; source 2's message arrives
            // mid-epoch, before its leaf is probed.
            e.add_arrivals([
                msg(0, 0, 0, 10_000_000),
                msg(1, 3, 0, 10_000_000),
                msg(2, 2, 600, 10_000_000),
            ])
            .unwrap();
            e.run_to_completion(Ticks(100_000_000)).unwrap();
            e.into_stats()
                .deliveries
                .iter()
                .map(|d| d.message.source.0)
                .collect::<Vec<_>>()
        };
        // Blocked: the late message waits for the epoch (0, 3, then 2).
        assert_eq!(run(AccessMode::Blocked), vec![0, 3, 2]);
        // Free: it joins at its leaf, beating source 3 (0, 2, 3).
        assert_eq!(run(AccessMode::Free), vec![0, 2, 3]);
    }

    #[test]
    fn late_arrivals_defer_until_epoch_ends() {
        let mut e = network(4);
        // Two stations collide at t = 0; a third message arrives while the
        // epoch is resolving and must wait.
        e.add_arrivals([
            msg(0, 0, 0, 10_000_000),
            msg(1, 1, 0, 10_000_000),
            msg(2, 2, 600, 10_000_000),
        ])
        .unwrap();
        e.run_to_completion(Ticks(100_000_000)).unwrap();
        let d = &e.stats().deliveries;
        assert_eq!(d.len(), 3);
        assert_eq!(d[2].message.id, MessageId(2));
    }
}
