//! Local queue disciplines for the baseline protocols.

use ddcr_sim::{Message, MessageId};
use serde::{Deserialize, Serialize};

/// Queue service order at a baseline station.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum QueueDiscipline {
    /// First-come, first-served (classical Ethernet drivers).
    #[default]
    Fifo,
    /// Earliest absolute deadline first (isolates the MAC layer's effect
    /// when comparing against CSMA/DDCR, which always runs local EDF).
    Edf,
}

/// A small local queue with a pluggable service order.
#[derive(Debug, Clone, Default)]
pub struct LocalQueue {
    discipline: QueueDiscipline,
    items: Vec<Message>,
}

impl LocalQueue {
    /// An empty queue with the given discipline.
    pub fn new(discipline: QueueDiscipline) -> Self {
        LocalQueue {
            discipline,
            items: Vec::new(),
        }
    }

    /// Inserts a message in service order.
    pub fn push(&mut self, message: Message) {
        let pos = match self.discipline {
            QueueDiscipline::Fifo => {
                let k = (message.arrival, message.id);
                self.items
                    .partition_point(|m| (m.arrival, m.id) <= k)
            }
            QueueDiscipline::Edf => {
                let k = (message.absolute_deadline(), message.arrival, message.id);
                self.items
                    .partition_point(|m| (m.absolute_deadline(), m.arrival, m.id) <= k)
            }
        };
        self.items.insert(pos, message);
    }

    /// The message that would be served next.
    pub fn head(&self) -> Option<&Message> {
        self.items.first()
    }

    /// Removes the head if it matches the given id.
    pub fn pop_if(&mut self, id: MessageId) -> Option<Message> {
        if self.head().map(|m| m.id) == Some(id) {
            Some(self.items.remove(0))
        } else {
            None
        }
    }

    /// Removes and returns the head.
    pub fn pop(&mut self) -> Option<Message> {
        if self.items.is_empty() {
            None
        } else {
            Some(self.items.remove(0))
        }
    }

    /// Number of waiting messages.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddcr_sim::{ClassId, SourceId, Ticks};

    fn msg(id: u64, arrival: u64, deadline: u64) -> Message {
        Message {
            id: MessageId(id),
            source: SourceId(0),
            class: ClassId(0),
            bits: 100,
            arrival: Ticks(arrival),
            deadline: Ticks(deadline),
        }
    }

    #[test]
    fn fifo_orders_by_arrival() {
        let mut q = LocalQueue::new(QueueDiscipline::Fifo);
        q.push(msg(0, 50, 10)); // urgent but late arrival
        q.push(msg(1, 10, 1_000));
        assert_eq!(q.head().unwrap().id, MessageId(1));
    }

    #[test]
    fn edf_orders_by_deadline() {
        let mut q = LocalQueue::new(QueueDiscipline::Edf);
        q.push(msg(0, 50, 10)); // DM 60
        q.push(msg(1, 10, 1_000)); // DM 1010
        assert_eq!(q.head().unwrap().id, MessageId(0));
    }

    #[test]
    fn pop_if_checks_identity() {
        let mut q = LocalQueue::new(QueueDiscipline::Fifo);
        q.push(msg(0, 0, 10));
        assert!(q.pop_if(MessageId(9)).is_none());
        assert!(q.pop_if(MessageId(0)).is_some());
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
    }
}
