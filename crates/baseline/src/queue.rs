//! Local queue disciplines for the baseline protocols.

use ddcr_sim::{Message, MessageId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Queue service order at a baseline station.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum QueueDiscipline {
    /// First-come, first-served (classical Ethernet drivers).
    #[default]
    Fifo,
    /// Earliest absolute deadline first (isolates the MAC layer's effect
    /// when comparing against CSMA/DDCR, which always runs local EDF).
    Edf,
}

/// A small local queue with a pluggable service order. Backed by a
/// `VecDeque` so the hot-path `pop` is O(1) instead of shifting the whole
/// buffer the way `Vec::remove(0)` does.
#[derive(Debug, Clone, Default)]
pub struct LocalQueue {
    discipline: QueueDiscipline,
    items: VecDeque<Message>,
}

impl LocalQueue {
    /// An empty queue with the given discipline.
    pub fn new(discipline: QueueDiscipline) -> Self {
        LocalQueue {
            discipline,
            items: VecDeque::new(),
        }
    }

    /// Inserts a message in service order.
    pub fn push(&mut self, message: Message) {
        let pos = match self.discipline {
            QueueDiscipline::Fifo => {
                let k = (message.arrival, message.id);
                self.items
                    .partition_point(|m| (m.arrival, m.id) <= k)
            }
            QueueDiscipline::Edf => {
                let k = (message.absolute_deadline(), message.arrival, message.id);
                self.items
                    .partition_point(|m| (m.absolute_deadline(), m.arrival, m.id) <= k)
            }
        };
        self.items.insert(pos, message);
    }

    /// The message that would be served next.
    pub fn head(&self) -> Option<&Message> {
        self.items.front()
    }

    /// Removes the head if it matches the given id.
    pub fn pop_if(&mut self, id: MessageId) -> Option<Message> {
        if self.head().map(|m| m.id) == Some(id) {
            self.items.pop_front()
        } else {
            None
        }
    }

    /// Removes and returns the head in O(1).
    pub fn pop(&mut self) -> Option<Message> {
        self.items.pop_front()
    }

    /// Number of waiting messages.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddcr_sim::{ClassId, SourceId, Ticks};

    fn msg(id: u64, arrival: u64, deadline: u64) -> Message {
        Message {
            id: MessageId(id),
            source: SourceId(0),
            class: ClassId(0),
            bits: 100,
            arrival: Ticks(arrival),
            deadline: Ticks(deadline),
        }
    }

    #[test]
    fn fifo_orders_by_arrival() {
        let mut q = LocalQueue::new(QueueDiscipline::Fifo);
        q.push(msg(0, 50, 10)); // urgent but late arrival
        q.push(msg(1, 10, 1_000));
        assert_eq!(q.head().unwrap().id, MessageId(1));
    }

    #[test]
    fn edf_orders_by_deadline() {
        let mut q = LocalQueue::new(QueueDiscipline::Edf);
        q.push(msg(0, 50, 10)); // DM 60
        q.push(msg(1, 10, 1_000)); // DM 1010
        assert_eq!(q.head().unwrap().id, MessageId(0));
    }

    #[test]
    fn tied_keys_keep_push_order_across_pops() {
        // The service keys include the id, but fully tied keys (same id,
        // distinguishable by bits) must stay in push order even while pops
        // rotate the backing deque.
        for discipline in [QueueDiscipline::Fifo, QueueDiscipline::Edf] {
            let mut q = LocalQueue::new(discipline);
            let mut served = Vec::new();
            for round in 0..3u64 {
                for step in 0..2u64 {
                    let mut m = msg(7, 10, 90);
                    m.bits = round * 2 + step;
                    q.push(m);
                }
                served.push(q.pop().unwrap().bits);
            }
            while let Some(m) = q.pop() {
                served.push(m.bits);
            }
            assert_eq!(served, vec![0, 1, 2, 3, 4, 5], "{discipline:?}");
        }
    }

    #[test]
    fn pop_if_checks_identity() {
        let mut q = LocalQueue::new(QueueDiscipline::Fifo);
        q.push(msg(0, 0, 10));
        assert!(q.pop_if(MessageId(9)).is_none());
        assert!(q.pop_if(MessageId(0)).is_some());
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
    }
}
