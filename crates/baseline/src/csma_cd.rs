//! 1-persistent CSMA-CD with truncated binary exponential backoff — the
//! IEEE 802.3 MAC the paper positions CSMA/DDCR against.
//!
//! Faithful to the standard's shape: on a collision, the attempt counter
//! increments and the station waits a uniformly random number of slot
//! times drawn from `[0, 2^min(attempts, 10) − 1]`; after 16 attempts the
//! frame is discarded. Stochastic backoff is exactly what makes the
//! protocol unable to offer hard deadline guarantees — the baseline
//! experiments (E8) quantify that.

use crate::queue::{LocalQueue, QueueDiscipline};
use ddcr_sim::rng::{derive_seed, seeded_rng};
use ddcr_sim::{Action, Frame, HoldHint, Message, Observation, SourceId, Station, Ticks, WakeHint};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-station counters for the CSMA-CD baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsmaCdCounters {
    /// Transmission attempts made.
    pub attempts: u64,
    /// Collisions this station was part of.
    pub collisions: u64,
    /// Frames discarded after 16 attempts.
    pub drops: u64,
    /// Frames successfully transmitted.
    pub transmitted: u64,
}

/// A station running 1-persistent CSMA-CD with binary exponential backoff.
///
/// # Examples
///
/// ```
/// use ddcr_baseline::{CsmaCdStation, QueueDiscipline};
/// use ddcr_sim::{MediumConfig, SourceId};
///
/// let station = CsmaCdStation::new(
///     SourceId(0),
///     MediumConfig::ethernet(),
///     QueueDiscipline::Fifo,
///     42, // RNG seed
/// );
/// assert_eq!(station.counters().drops, 0);
/// ```
#[derive(Debug)]
pub struct CsmaCdStation {
    source: SourceId,
    overhead_bits: u64,
    /// Slot time `x` of the medium, to convert the slot-denominated
    /// backoff into a tick horizon for idle fast-forward.
    slot_ticks: u64,
    queue: LocalQueue,
    rng: StdRng,
    /// Remaining backoff, in observed slots.
    backoff: u64,
    /// Attempts made for the current head frame.
    attempts: u32,
    /// Whether this station transmitted in the slot being observed.
    transmitting: bool,
    counters: CsmaCdCounters,
}

/// Maximum attempts before a frame is discarded (802.3 `attemptLimit`).
const ATTEMPT_LIMIT: u32 = 16;
/// Backoff exponent cap (802.3 `backoffLimit`).
const BACKOFF_LIMIT: u32 = 10;

impl CsmaCdStation {
    /// Creates a station; `seed` drives its private backoff stream
    /// (combined with the source id so stations never share a stream).
    pub fn new(
        source: SourceId,
        medium: ddcr_sim::MediumConfig,
        discipline: QueueDiscipline,
        seed: u64,
    ) -> Self {
        CsmaCdStation {
            source,
            overhead_bits: medium.overhead_bits,
            slot_ticks: medium.slot_ticks,
            queue: LocalQueue::new(discipline),
            rng: seeded_rng(derive_seed(seed, u64::from(source.0))),
            backoff: 0,
            attempts: 0,
            transmitting: false,
            counters: CsmaCdCounters::default(),
        }
    }

    /// Counters accumulated so far.
    pub fn counters(&self) -> CsmaCdCounters {
        self.counters
    }

    /// The transmitter side of a failed slot (collision, or an erased
    /// frame — indistinguishable to the MAC): bump the attempt counter and
    /// back off, or discard after `attemptLimit`.
    fn on_failed_attempt(&mut self) {
        self.counters.collisions += 1;
        self.attempts += 1;
        if self.attempts >= ATTEMPT_LIMIT {
            // excessiveCollisionError: discard the frame.
            self.queue.pop();
            self.counters.drops += 1;
            self.attempts = 0;
            self.backoff = 0;
        } else {
            let exp = self.attempts.min(BACKOFF_LIMIT);
            let window = (1u64 << exp) - 1;
            self.backoff = self.rng.gen_range(0..=window);
        }
    }
}

impl Station for CsmaCdStation {
    fn deliver(&mut self, message: Message) {
        self.queue.push(message);
    }

    fn poll(&mut self, _now: Ticks) -> Action {
        self.transmitting = false;
        if self.backoff > 0 {
            return Action::Idle;
        }
        match self.queue.head() {
            Some(&head) => {
                self.transmitting = true;
                self.counters.attempts += 1;
                Action::Transmit(Frame::new(head, head.bits + self.overhead_bits))
            }
            None => Action::Idle,
        }
    }

    fn observe(&mut self, _now: Ticks, _next_free: Ticks, observation: &Observation) {
        // Backoff elapses with channel time regardless of what occupied it.
        if self.backoff > 0 {
            self.backoff -= 1;
        }
        match observation {
            Observation::Busy(frame) => {
                if frame.message.source == self.source
                    && self.queue.pop_if(frame.message.id).is_some()
                {
                    self.counters.transmitted += 1;
                    self.attempts = 0;
                }
            }
            Observation::Collision { survivor } => {
                if let Some(frame) = survivor {
                    if frame.message.source == self.source
                        && self.queue.pop_if(frame.message.id).is_some()
                    {
                        self.counters.transmitted += 1;
                        self.attempts = 0;
                    }
                }
                if self.transmitting {
                    self.on_failed_attempt();
                }
            }
            Observation::Garbled => {
                // The frame was erased on the wire; loss detection is
                // symmetric, so the transmitter reacts exactly as it would
                // to a collision and retries through backoff.
                if self.transmitting {
                    self.on_failed_attempt();
                }
            }
            Observation::Silence => {}
        }
        self.transmitting = false;
    }

    fn backlog(&self) -> usize {
        self.queue.len()
    }

    fn next_ready(&self, now: Ticks) -> Option<Ticks> {
        if self.queue.is_empty() {
            // Nothing to send: silence only drains backoff, which
            // `skip_silence` accounts for in bulk.
            None
        } else if self.backoff == 0 {
            Some(now)
        } else {
            // Idle until the backoff expires, then 1-persistent again.
            Some(now + Ticks(self.slot_ticks) * self.backoff)
        }
    }

    fn skip_silence(&mut self, _from: Ticks, slots: u64, _slot: Ticks) {
        // A silence observation only decrements the backoff counter.
        self.backoff = self.backoff.saturating_sub(slots);
    }

    fn hold_hint(&self, _now: Ticks) -> HoldHint {
        if self.queue.is_empty() {
            // Nothing to send; busy slots only drain the backoff counter.
            HoldHint::Quiet(u64::MAX)
        } else if self.backoff > 0 {
            // 1-persistent again once the backoff expires — which elapses
            // with channel time regardless of what occupied it.
            HoldHint::Quiet(self.backoff)
        } else {
            // Uncontested, the station streams its whole queue: every
            // success resets `attempts` and leaves `backoff` at zero.
            HoldHint::Hold(self.queue.len() as u64)
        }
    }

    fn skip_busy(&mut self, _from: Ticks, frames: &[Frame], _slot: Ticks) {
        // A foreign busy slot only decrements the backoff counter (the
        // frames belong to the holding station, never to this queue).
        self.backoff = self.backoff.saturating_sub(frames.len() as u64);
    }

    fn label(&self) -> String {
        format!("csma-cd:{}", self.source)
    }

    fn wake_hint(&self) -> WakeHint {
        // With an empty queue the station can only be woken by `deliver`:
        // poll() returns Idle regardless of backoff, and every observation
        // merely decrements the backoff counter — which the batched
        // `observe`/`skip_silence`/`skip_busy` catch-up replays exactly.
        if self.queue.is_empty() {
            WakeHint::Dormant
        } else {
            WakeHint::Active
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddcr_sim::{ClassId, Engine, MediumConfig, MessageId};

    fn msg(id: u64, source: u32, arrival: u64, deadline: u64) -> Message {
        Message {
            id: MessageId(id),
            source: SourceId(source),
            class: ClassId(0),
            bits: 8_000,
            arrival: Ticks(arrival),
            deadline: Ticks(deadline),
        }
    }

    fn network(z: u32, seed: u64) -> Engine {
        let medium = MediumConfig::ethernet();
        let mut engine = Engine::new(medium).unwrap();
        for i in 0..z {
            engine.add_station(Box::new(CsmaCdStation::new(
                SourceId(i),
                medium,
                QueueDiscipline::Fifo,
                seed,
            )));
        }
        engine
    }

    #[test]
    fn uncontended_message_transmits_immediately() {
        let mut e = network(4, 1);
        e.add_arrivals([msg(0, 0, 0, 1_000_000)]).unwrap();
        e.run_to_completion(Ticks(10_000_000)).unwrap();
        assert_eq!(e.stats().deliveries.len(), 1);
        assert_eq!(e.stats().collisions, 0);
    }

    #[test]
    fn collisions_eventually_resolve_via_backoff() {
        let mut e = network(4, 7);
        e.add_arrivals((0..8).map(|i| msg(i, (i % 4) as u32, 0, 100_000_000)))
            .unwrap();
        e.run_to_completion(Ticks(1_000_000_000)).unwrap();
        assert_eq!(e.stats().deliveries.len(), 8);
        assert!(e.stats().collisions > 0, "expected at least one collision");
    }

    #[test]
    fn same_seed_same_trace() {
        let run = |seed: u64| {
            let mut e = network(4, seed);
            e.add_arrivals((0..8).map(|i| msg(i, (i % 4) as u32, 0, 100_000_000)))
                .unwrap();
            e.run_to_completion(Ticks(1_000_000_000)).unwrap();
            e.stats()
                .deliveries
                .iter()
                .map(|d| (d.message.id, d.completed_at))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4)); // different seed, different schedule
    }

    #[test]
    fn edf_discipline_changes_local_order() {
        let medium = MediumConfig::ethernet();
        let mut e = Engine::new(medium).unwrap();
        e.add_station(Box::new(CsmaCdStation::new(
            SourceId(0),
            medium,
            QueueDiscipline::Edf,
            0,
        )));
        e.add_arrivals([
            msg(0, 0, 0, 50_000_000), // loose deadline, arrives first
            msg(1, 0, 0, 1_000_000),  // tight deadline
        ])
        .unwrap();
        e.run_to_completion(Ticks(100_000_000)).unwrap();
        assert_eq!(e.stats().deliveries[0].message.id, MessageId(1));
    }
}
