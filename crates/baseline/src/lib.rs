//! # ddcr-baseline — comparison MAC protocols
//!
//! The protocols CSMA/DDCR is measured against in the reproduction's
//! experiments (E8):
//!
//! * [`CsmaCdStation`] — IEEE 802.3 1-persistent CSMA-CD with truncated
//!   binary exponential backoff: the dominant LAN MAC of the paper's era,
//!   stochastic and therefore unable to give hard deadline guarantees;
//! * [`DcrStation`] — CSMA/DCR (802.3D, Le Lann & Rolin 1984): the
//!   deterministic static-tree ancestor of CSMA/DDCR, bounded but
//!   deadline-blind;
//! * [`NpEdfOracle`] — centralized non-preemptive EDF with zero contention
//!   overhead: the optimality reference [20, 21] CSMA/DDCR emulates in a
//!   distributed way.
//!
//! All three implement [`ddcr_sim::Station`] and run on the same simulated
//! broadcast medium as the real protocol, so comparisons isolate the MAC
//! discipline itself.

#![warn(missing_docs)]

mod csma_cd;
mod dcr;
mod npedf;
mod queue;

pub use csma_cd::{CsmaCdCounters, CsmaCdStation};
pub use dcr::{AccessMode, DcrCounters, DcrStation};
pub use npedf::NpEdfOracle;
pub use queue::{LocalQueue, QueueDiscipline};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<CsmaCdStation>();
        assert_send::<DcrStation>();
        assert_send::<NpEdfOracle>();
    }
}
