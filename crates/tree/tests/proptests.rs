//! Property-based cross-validation of all ξ implementations.

use ddcr_tree::{asymptotic, closed_form, divide, multi, search, SearchTimeTable, TreeShape};
use proptest::prelude::*;

/// Strategy over modest tree shapes (t ≤ 4096) plus a valid k.
fn shape_and_k() -> impl Strategy<Value = (u64, u32, u64)> {
    (2u64..=6, 1u32..=5)
        .prop_filter("t fits", |(m, n)| m.pow(*n) <= 4096)
        .prop_flat_map(|(m, n)| {
            let t = m.pow(n);
            (Just(m), Just(n), 0..=t)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// DP (Eq. 1), divide-and-conquer (Eq. 2–4) and closed form (Eq. 9–10)
    /// all agree, for every shape and activity level.
    #[test]
    fn three_routes_agree((m, n, k) in shape_and_k()) {
        let shape = TreeShape::new(m, n).unwrap();
        let table = SearchTimeTable::compute(shape).unwrap();
        let dp = table.xi(k).unwrap();
        prop_assert_eq!(divide::xi_divide(shape, k).unwrap(), dp);
        prop_assert_eq!(closed_form::xi_closed(shape, k).unwrap(), dp);
    }

    /// Eq. 3: odd values sit exactly one below the preceding even value.
    #[test]
    fn odd_even_staircase((m, n, k) in shape_and_k()) {
        prop_assume!(k >= 3 && k % 2 == 1);
        let shape = TreeShape::new(m, n).unwrap();
        let even = closed_form::xi_closed(shape, k - 1).unwrap();
        let odd = closed_form::xi_closed(shape, k).unwrap();
        prop_assert_eq!(odd, even - 1);
    }

    /// The asymptotic bound dominates the exact value on [2, 2t/m].
    #[test]
    fn asymptotic_dominates((m, n, k) in shape_and_k()) {
        let shape = TreeShape::new(m, n).unwrap();
        let t = shape.leaves();
        prop_assume!(k >= 2 && k <= 2 * t / m);
        let exact = closed_form::xi_closed(shape, k).unwrap() as f64;
        let tilde = asymptotic::xi_tilde(shape, k as f64);
        prop_assert!(tilde >= exact - 1e-9, "tilde={tilde} exact={exact}");
        // And stays within the Eq. 13 envelope, allowing the odd-k
        // staircase of Eq. 3 (which the continuous envelope does not see)
        // to overshoot by 1 + the local slope of ξ̃ (≲ m).
        let c = asymptotic::tightness_coefficient(m);
        prop_assert!(tilde - exact <= c * t as f64 + 1.0 + m as f64 + 1e-9);
    }

    /// Replayed searches over arbitrary leaf subsets never exceed ξ_k^t, and
    /// transmit exactly the active leaves in left-to-right order.
    #[test]
    fn replayed_search_within_bound(
        (m, n) in (2u64..=4, 1u32..=3),
        seed in any::<u64>(),
    ) {
        let shape = TreeShape::new(m, n).unwrap();
        let t = shape.leaves();
        // Derive a pseudo-random subset from the seed.
        let mut leaves: Vec<u64> = (0..t).filter(|i| (seed >> (i % 63)) & 1 == 1).collect();
        if leaves.len() as u64 > t { leaves.truncate(t as usize); }
        let out = search::search_active_leaves(shape, &leaves).unwrap();
        let k = leaves.len() as u64;
        let bound = closed_form::xi_closed(shape, k).unwrap();
        prop_assert!(out.search_slots() <= bound,
            "subset {:?}: {} > ξ={bound}", leaves, out.search_slots());
        let mut expect = leaves.clone();
        expect.sort_unstable();
        prop_assert_eq!(out.transmissions, expect);
    }

    /// Exhaustive worst case equals ξ_k^t on small trees (achievability of
    /// the Eq. 1 bound).
    #[test]
    fn exhaustive_achieves_xi(
        (m, n) in prop_oneof![Just((2u64, 3u32)), Just((3, 2)), Just((2, 4)), Just((4, 2))],
        frac in 0.0f64..=1.0,
    ) {
        let shape = TreeShape::new(m, n).unwrap();
        let t = shape.leaves();
        let k = ((t as f64) * frac).round() as u64;
        let (worst, _) = search::worst_case_exhaustive(shape, k).unwrap();
        prop_assert_eq!(worst, closed_form::xi_closed(shape, k).unwrap());
    }

    /// P2: the asymptotic bound dominates the exact DP optimum, and the two
    /// closed forms of Eq. 18 agree.
    #[test]
    fn multi_tree_bound_dominates(
        (m, n) in prop_oneof![Just((2u64, 3u32)), Just((2, 4)), Just((3, 2)), Just((4, 2))],
        v in 1u64..=5,
        slack in 0u64..40,
    ) {
        let shape = TreeShape::new(m, n).unwrap();
        let t = shape.leaves();
        let u = (2 * v + slack).min(t * v);
        let p = multi::MultiTreeProblem::new(shape, u, v).unwrap();
        let exact = p.exact_optimum().unwrap();
        prop_assert!(p.bound() + 1e-9 >= exact.total as f64);
        let a = p.bound();
        let b = p.bound_big_tree_form();
        prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
    }

    /// Monotone structure: ξ is 1 at k=0, 0 at k=1, and for k ≥ 2 the even
    /// subsequence is unimodal with peak at k = 2t/m (Eq. 6).
    #[test]
    fn even_subsequence_unimodal((m, n) in (2u64..=5, 1u32..=4)) {
        prop_assume!(m.pow(n) <= 1024);
        let shape = TreeShape::new(m, n).unwrap();
        let table = SearchTimeTable::compute(shape).unwrap();
        let t = shape.leaves();
        let peak = closed_form::peak_k(shape);
        let mut prev = table.xi(2).unwrap();
        let mut k = 4;
        while k <= t {
            let cur = table.xi(k).unwrap();
            if k <= peak {
                prop_assert!(cur >= prev, "rising phase violated at k={k}");
            } else {
                prop_assert!(cur <= prev, "falling phase violated at k={k}");
            }
            prev = cur;
            k += 2;
        }
        prop_assert_eq!(table.xi(peak).unwrap(), closed_form::xi_peak(shape));
    }
}
