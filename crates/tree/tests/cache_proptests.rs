//! Property-based coverage of the memoized table cache: serving a table
//! from [`ddcr_tree::cache`] must be observationally identical to
//! computing it fresh, for every shape and activity level, and the cached
//! values must satisfy the paper's closed-form boundary identities.

use ddcr_tree::average::ExpectedSearchTable;
use ddcr_tree::{cache, closed_form, SearchTimeTable, TreeShape};
use proptest::prelude::*;

/// Strategy over modest tree shapes (t ≤ 4096) plus a valid k.
fn shape_and_k() -> impl Strategy<Value = (u64, u32, u64)> {
    (2u64..=6, 1u32..=5)
        .prop_filter("t fits", |(m, n)| m.pow(*n) <= 4096)
        .prop_flat_map(|(m, n)| {
            let t = m.pow(n);
            (Just(m), Just(n), 0..=t)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A cached worst-case table answers every query exactly like a table
    /// computed from scratch — the cache may never change a value.
    #[test]
    fn cached_xi_equals_fresh_computation((m, n, k) in shape_and_k()) {
        let shape = TreeShape::new(m, n).unwrap();
        let cached = cache::global().worst_case(shape).unwrap();
        let fresh = SearchTimeTable::compute(shape).unwrap();
        prop_assert_eq!(cached.xi(k).unwrap(), fresh.xi(k).unwrap());
        prop_assert_eq!(cached.as_slice(), fresh.as_slice());
        // The convenience accessor goes through the same cache.
        prop_assert_eq!(cache::global().xi(shape, k).unwrap(), fresh.xi(k).unwrap());
    }

    /// Boundary identities on cached tables: `ξ_0 = 1` (one probe finds
    /// silence), `ξ_1 = 0` (a lone message transmits without search),
    /// `ξ_2 = mn − 1` (Eq. 5) and `ξ_t = (t − 1)·m/(m − 1)` (Eq. 7,
    /// via `closed_form::xi_full`).
    #[test]
    fn cached_tables_satisfy_boundary_identities(
        (m, n) in (2u64..=6, 1u32..=5).prop_filter("t fits", |(m, n)| m.pow(*n) <= 4096)
    ) {
        let shape = TreeShape::new(m, n).unwrap();
        let table = cache::global().worst_case(shape).unwrap();
        prop_assert_eq!(table.xi(0).unwrap(), 1);
        prop_assert_eq!(table.xi(1).unwrap(), 0);
        prop_assert_eq!(table.xi(2).unwrap(), closed_form::xi_two(shape));
        prop_assert_eq!(table.xi(2).unwrap(), m * u64::from(n) - 1);
        let t = shape.leaves();
        prop_assert_eq!(table.xi(t).unwrap(), closed_form::xi_full(shape));
        prop_assert_eq!(
            table.xi(closed_form::peak_k(shape)).unwrap(),
            closed_form::xi_peak(shape)
        );
    }

    /// Same for the expected-cost table: cache and fresh computation agree
    /// bitwise on every entry.
    #[test]
    fn cached_expected_equals_fresh_computation(
        (m, n) in (2u64..=4, 1u32..=4).prop_filter("t fits", |(m, n)| m.pow(*n) <= 256)
    ) {
        let shape = TreeShape::new(m, n).unwrap();
        let cached = cache::global().expected(shape).unwrap();
        let fresh = ExpectedSearchTable::compute(shape).unwrap();
        for k in 0..=shape.leaves() {
            prop_assert_eq!(
                cached.expected(k).unwrap().to_bits(),
                fresh.expected(k).unwrap().to_bits(),
                "k={}", k
            );
        }
    }

    /// Repeated lookups are served from the cache (the hit counter moves),
    /// and the same `Arc` is returned each time.
    #[test]
    fn repeat_lookups_hit_the_cache(
        (m, n) in (2u64..=6, 1u32..=5).prop_filter("t fits", |(m, n)| m.pow(*n) <= 4096)
    ) {
        let shape = TreeShape::new(m, n).unwrap();
        let first = cache::global().worst_case(shape).unwrap();
        let before = cache::thread_stats();
        let second = cache::global().worst_case(shape).unwrap();
        let delta = cache::thread_stats().since(before);
        prop_assert!(std::sync::Arc::ptr_eq(&first, &second));
        prop_assert_eq!(delta.hits, 1);
        prop_assert_eq!(delta.misses, 0);
    }
}
