//! The asymptotic upper bound `ξ̃_k^t` — Eq. (11)–(14) of the paper.
//!
//! The concave real-valued function
//!
//! ```text
//! ξ̃_k^t = (m·k/2 − 1)/(m − 1) + (m·k/2)·log_m(2t/k) − k
//! ```
//!
//! interpolates the exact `ξ_k^t` at the points `k = 2·m^i` and dominates it
//! everywhere on `[2, 2t/m]` (Eq. 11). The paper quantifies the gap:
//!
//! * Eq. (12): the maximum gap over `[2, 2t/m]` is attained on `[2t/m², 2t/m]`;
//! * Eq. (13): the gap is at most `(m^{1/(m−1)}/(e·ln m) − 1/(m−1))·t`;
//! * Eq. (14): over all `m`, at most `(⁴√3/(2e·ln 3) − 1/8)·t ≤ 9.54 %·t`
//!   (the coefficient of Eq. 13 is maximal at `m = 9`, where
//!   `m^{1/(m−1)} = 3^{1/4}` and `ln 9 = 2 ln 3`).
//!
//! Because `ξ̃` is concave in `k`, it is the key to problem P2
//! ([`crate::multi`]): the worst split of `u` messages over `v` trees puts
//! `u/v` in each, and that value may be fractional — hence a real-valued
//! bound is required, not the integer `ξ`.

use crate::geometry::TreeShape;

/// The asymptotic bound `ξ̃_k^t` of Eq. (11), for real `k ∈ [2, t]`.
///
/// The value is meaningful (and proven to dominate the exact `ξ_k^t`) on
/// `[2, 2t/m]`; on `[2t/m, t]` use the exact linear tail
/// [`crate::closed_form::xi_tail`] instead (Eq. 15).
///
/// # Panics
///
/// Panics if `k < 2` or `k > t` (debug builds assert; release clamps would
/// silently corrupt feasibility bounds, so we always check).
///
/// # Examples
///
/// ```
/// use ddcr_tree::{asymptotic, TreeShape};
///
/// # fn main() -> Result<(), ddcr_tree::TreeError> {
/// let shape = TreeShape::new(4, 3)?;
/// // At k = 2·4^i the bound coincides with the exact value:
/// assert!((asymptotic::xi_tilde(shape, 2.0) - 11.0).abs() < 1e-9);
/// assert!((asymptotic::xi_tilde(shape, 8.0) - 29.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn xi_tilde(shape: TreeShape, k: f64) -> f64 {
    let t = shape.leaves() as f64;
    let m = shape.branching() as f64;
    assert!(
        (2.0..=t).contains(&k),
        "xi_tilde requires k in [2, t], got k={k} for t={t}"
    );
    let half = m * k / 2.0;
    (half - 1.0) / (m - 1.0) + half * (2.0 * t / k).ln() / m.ln() - k
}

/// The per-`m` tightness coefficient of Eq. (13):
/// `c(m) = m^{1/(m−1)} / (e·ln m) − 1/(m−1)`, so that
/// `max_{k∈[2,2t/m]} (ξ̃_k^t − ξ_k^t) ≤ c(m)·t`.
pub fn tightness_coefficient(m: u64) -> f64 {
    assert!(m >= 2, "tightness coefficient requires m >= 2");
    let m = m as f64;
    m.powf(1.0 / (m - 1.0)) / (std::f64::consts::E * m.ln()) - 1.0 / (m - 1.0)
}

/// The universal tightness constant of Eq. (14):
/// `⁴√3 / (2e·ln 3) − 1/8 ≈ 0.09537`, i.e. the gap never exceeds
/// `9.54 %` of `t` for any branching degree.
pub fn universal_tightness_constant() -> f64 {
    3f64.powf(0.25) / (2.0 * std::f64::consts::E * 3f64.ln()) - 0.125
}

/// Measured maximum gap `max_k (ξ̃_k^t − ξ_k^t)` over integer
/// `k ∈ [2, 2t/m]`, together with the `k` achieving it.
///
/// Used by experiment E4 to reproduce Eq. (12)–(14) numerically.
///
/// # Errors
///
/// Propagates table-construction errors from [`crate::exact`].
pub fn max_gap(shape: TreeShape) -> Result<GapReport, crate::TreeError> {
    let table = crate::cache::global().worst_case(shape)?;
    let hi = 2 * shape.leaves() / shape.branching();
    let mut best_gap = f64::NEG_INFINITY;
    let mut best_even = f64::NEG_INFINITY;
    let mut best_k = 2;
    for k in 2..=hi {
        let gap = xi_tilde(shape, k as f64) - table.xi(k)? as f64;
        if gap > best_gap {
            best_gap = gap;
            best_k = k;
        }
        if k % 2 == 0 && gap > best_even {
            best_even = gap;
        }
    }
    Ok(GapReport {
        shape,
        max_gap: best_gap,
        max_gap_even: best_even,
        argmax_k: best_k,
        relative_to_t: best_gap / shape.leaves() as f64,
    })
}

/// Result of a tightness measurement (experiment E4).
///
/// Eq. (13)–(14) of the paper bound the **continuous envelope** of the gap;
/// the exact integer curve's odd-`k` staircase (`ξ_{2p+1} = ξ_{2p} − 1`,
/// Eq. 3) sits up to one slot below the even subsequence, so the discrete
/// all-`k` maximum can exceed the Eq. (13) coefficient by a small additive constant (one
/// slot plus the local slope of ξ̃, at most `1 + m`).
/// `max_gap_even` obeys Eq. (13) exactly; `max_gap` within `+(1 + m)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapReport {
    /// Tree shape measured.
    pub shape: TreeShape,
    /// Maximum of `ξ̃_k^t − ξ_k^t` over integer `k ∈ [2, 2t/m]`.
    pub max_gap: f64,
    /// Maximum of the gap over even `k` only (the curve Eq. 13 bounds).
    pub max_gap_even: f64,
    /// The `k` attaining the all-`k` maximum.
    pub argmax_k: u64,
    /// `max_gap / t`, to compare against Eq. (13)–(14).
    pub relative_to_t: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::SearchTimeTable;

    #[test]
    fn coincides_with_exact_at_anchor_points() {
        // Eq. 11 is derived at k = 2·m^i, i ∈ [0, ⌊log_m(t/2)⌋].
        for (m, n) in [(2u64, 6u32), (4, 3), (3, 4)] {
            let shape = TreeShape::new(m, n).unwrap();
            let table = SearchTimeTable::compute(shape).unwrap();
            let mut k = 2u64;
            while k <= shape.leaves() / 2 * 2 && 2 * shape.leaves() / m >= k {
                let tilde = xi_tilde(shape, k as f64);
                let exact = table.xi(k).unwrap() as f64;
                assert!(
                    (tilde - exact).abs() < 1e-9,
                    "m={m} n={n} k={k}: tilde={tilde} exact={exact}"
                );
                k *= m;
            }
        }
    }

    #[test]
    fn dominates_exact_on_interval() {
        for (m, n) in [(2u64, 6u32), (4, 3), (3, 4), (5, 2)] {
            let shape = TreeShape::new(m, n).unwrap();
            let table = SearchTimeTable::compute(shape).unwrap();
            for k in 2..=(2 * shape.leaves() / m) {
                assert!(
                    xi_tilde(shape, k as f64) >= table.xi(k).unwrap() as f64 - 1e-9,
                    "m={m} n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn eq12_argmax_in_last_decade() {
        // The max gap is attained within [2t/m², 2t/m].
        for (m, n) in [(2u64, 8u32), (3, 5), (4, 4)] {
            let shape = TreeShape::new(m, n).unwrap();
            let report = max_gap(shape).unwrap();
            let lo = 2 * shape.leaves() / (m * m);
            let hi = 2 * shape.leaves() / m;
            assert!(
                (lo..=hi).contains(&report.argmax_k),
                "m={m} n={n} argmax={} not in [{lo}, {hi}]",
                report.argmax_k
            );
        }
    }

    #[test]
    fn eq13_per_m_bound_holds() {
        for (m, n) in [(2u64, 8u32), (3, 5), (4, 4), (5, 3), (9, 3)] {
            let shape = TreeShape::new(m, n).unwrap();
            let t = shape.leaves() as f64;
            let report = max_gap(shape).unwrap();
            let c = tightness_coefficient(m);
            // Even subsequence: obeys the continuous envelope exactly.
            assert!(
                report.max_gap_even <= c * t + 1e-9,
                "m={m} n={n}: even gap {} > c(m)·t = {}",
                report.max_gap_even,
                c * t
            );
            // All k: the odd staircase (Eq. 3) overshoots the continuous
            // envelope by at most 1 + the local slope of ξ̃ (≲ m).
            let slack = 1.0 + m as f64;
            assert!(
                report.max_gap <= c * t + slack + 1e-9,
                "m={m} n={n}: gap {} > c(m)·t + {slack} = {}",
                report.max_gap,
                c * t + slack
            );
        }
    }

    #[test]
    fn eq14_universal_constant_is_9_54_percent() {
        let c = universal_tightness_constant();
        assert!((c - 0.0954).abs() < 5e-4, "constant = {c}");
        // And it equals the per-m coefficient at m = 9.
        assert!((c - tightness_coefficient(9)).abs() < 1e-12);
        // It dominates every other branching degree's coefficient.
        for m in 2..=64 {
            assert!(tightness_coefficient(m) <= c + 1e-12, "m={m}");
        }
    }

    #[test]
    fn concavity_in_k() {
        let shape = TreeShape::new(4, 3).unwrap();
        let f = |k: f64| xi_tilde(shape, k);
        let mut k = 2.5;
        while k < 62.0 {
            let second = f(k + 1.0) - 2.0 * f(k) + f(k - 0.5) * 0.0; // placeholder
            let _ = second;
            // Standard midpoint concavity check: f((a+b)/2) >= (f(a)+f(b))/2.
            let a = k;
            let b = k + 1.5;
            assert!(
                f((a + b) / 2.0) >= (f(a) + f(b)) / 2.0 - 1e-9,
                "concavity violated at k={k}"
            );
            k += 0.7;
        }
    }

    #[test]
    #[should_panic(expected = "xi_tilde requires")]
    fn rejects_k_below_two() {
        xi_tilde(TreeShape::new(2, 3).unwrap(), 1.5);
    }
}
