//! Exact worst-case search times `ξ_k^t` via dynamic programming on Eq. (1).
//!
//! Eq. (1) of the paper defines, for a `t`-leaf balanced m-ary tree,
//!
//! ```text
//! ξ_k^t = 1 + max { ξ_{k_1}^{t/m} + … + ξ_{k_m}^{t/m} }   if k ∈ [2, t]
//!         over k_1 + … + k_m = k, k_i ∈ [0, t/m]
//! ξ_1^t = 0            (successful transmission — free)
//! ξ_0^t = 1            (one empty channel slot)
//! ```
//!
//! The inner maximum is a max-plus convolution of `m` copies of the subtree
//! table, so the whole table for `t` leaves is computed bottom-up in
//! `O(t²)` time — no search over `binomial(t, k)` leaf subsets is needed.
//! This module is the crate's ground truth for moderate `t`; the closed form
//! of [`crate::closed_form`] and the divide-and-conquer recursion of
//! [`crate::divide`] are validated against it.

use crate::error::TreeError;
use crate::geometry::TreeShape;

/// Full table of exact worst-case search times `ξ_k^t` for `k ∈ [0, t]`.
///
/// Built bottom-up from Eq. (1) by max-plus convolution. Indexing is by the
/// number of active leaves `k`.
///
/// # Examples
///
/// ```
/// use ddcr_tree::{SearchTimeTable, TreeShape};
///
/// # fn main() -> Result<(), ddcr_tree::TreeError> {
/// let shape = TreeShape::new(4, 3)?; // 64-leaf quaternary tree
/// let table = SearchTimeTable::compute(shape)?;
/// assert_eq!(table.xi(2)?, 11); // Eq. 5: m·log_m(t) − 1 = 4·3 − 1
/// assert_eq!(table.xi(64)?, 21); // Eq. 7: (t−1)/(m−1)
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchTimeTable {
    shape: TreeShape,
    xi: Vec<u64>,
}

impl SearchTimeTable {
    /// Computes the exact table for the given tree shape.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::Overflow`] if the leaf count is too large to
    /// allocate a table for (more than 2²⁴ leaves).
    pub fn compute(shape: TreeShape) -> Result<Self, TreeError> {
        const MAX_LEAVES: u64 = 1 << 24;
        if shape.leaves() > MAX_LEAVES {
            return Err(TreeError::Overflow {
                m: shape.branching(),
                n: shape.height(),
            });
        }
        let m = shape.branching() as usize;
        // Table for a single leaf: xi_0^1 = 1 (empty slot), xi_1^1 = 0.
        let mut level: Vec<u64> = vec![1, 0];
        for _ in 0..shape.height() {
            level = combine_level(&level, m);
        }
        debug_assert_eq!(level.len() as u64, shape.leaves() + 1);
        Ok(SearchTimeTable { shape, xi: level })
    }

    /// The shape this table was computed for.
    pub fn shape(&self) -> TreeShape {
        self.shape
    }

    /// Exact worst-case search time `ξ_k^t` for isolating `k` active leaves.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::TooManyActiveLeaves`] if `k > t`.
    pub fn xi(&self, k: u64) -> Result<u64, TreeError> {
        self.xi
            .get(k as usize)
            .copied()
            .ok_or(TreeError::TooManyActiveLeaves {
                k,
                t: self.shape.leaves(),
            })
    }

    /// The whole table as a slice, indexed by `k`.
    pub fn as_slice(&self) -> &[u64] {
        &self.xi
    }

    /// The monotone envelope of the table: `out[k] = max_{2 ≤ j ≤ k} ξ_j^t`
    /// (zero for `k < 2`).
    ///
    /// `ξ_k^t` itself is not monotone in `k` — it peaks below `t` and then
    /// decreases linearly (Eq. 15) — which makes the raw table unsafe to
    /// index with an *over-estimate* of `k`, as a live observer that can
    /// only lower-bound the number of active leaves must. The running
    /// maximum is monotone, so any over-estimate yields a sound (merely
    /// looser) bound. Used by the simulator's streaming ξ checks.
    pub fn xi_envelope(&self) -> Vec<u64> {
        let mut running = 0u64;
        self.xi
            .iter()
            .enumerate()
            .map(|(k, &xi)| {
                if k < 2 {
                    0
                } else {
                    running = running.max(xi);
                    running
                }
            })
            .collect()
    }

    /// Iterates over `(k, ξ_k^t)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.xi.iter().enumerate().map(|(k, &v)| (k as u64, v))
    }
}

/// Combines a child table into the parent table one level up:
/// max-plus convolution of `m` copies, then the `k ∈ {0, 1}` base cases and
/// the `+1` collision slot for `k ≥ 2`.
fn combine_level(child: &[u64], m: usize) -> Vec<u64> {
    let mut acc = child.to_vec();
    for _ in 1..m {
        acc = max_plus_convolve(&acc, child);
    }
    for (k, v) in acc.iter_mut().enumerate() {
        match k {
            0 => *v = 1,
            1 => *v = 0,
            _ => *v += 1,
        }
    }
    acc
}

/// Max-plus convolution: `out[k] = max over i+j=k of a[i] + b[j]`.
fn max_plus_convolve(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len() - 1];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let s = ai + bj;
            if s > out[i + j] {
                out[i + j] = s;
            }
        }
    }
    out
}

/// Computes a single `ξ_k^t` value exactly (convenience wrapper that builds
/// the full table; prefer [`SearchTimeTable`] when several values are
/// needed).
///
/// # Errors
///
/// Propagates errors from [`SearchTimeTable::compute`] and
/// [`SearchTimeTable::xi`].
pub fn xi_exact(shape: TreeShape, k: u64) -> Result<u64, TreeError> {
    crate::cache::global().worst_case(shape)?.xi(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(m: u64, n: u32) -> SearchTimeTable {
        SearchTimeTable::compute(TreeShape::new(m, n).unwrap()).unwrap()
    }

    #[test]
    fn base_cases() {
        let t = table(2, 1);
        assert_eq!(t.xi(0).unwrap(), 1);
        assert_eq!(t.xi(1).unwrap(), 0);
        assert_eq!(t.xi(2).unwrap(), 1); // Eq. 4: 1 + m − 2p with p=1, m=2
    }

    #[test]
    fn single_level_matches_eq4() {
        // Eq. 4: ξ_0^m = 1; ξ_{2p}^m = 1 + m − 2p; ξ_{2p+1}^m = ξ_{2p}^m − 1.
        for m in 2u64..=9 {
            let t = table(m, 1);
            assert_eq!(t.xi(0).unwrap(), 1, "m={m}");
            for p in 1..=(m / 2) {
                assert_eq!(t.xi(2 * p).unwrap(), 1 + m - 2 * p, "m={m} p={p}");
            }
            for p in 1..m.div_ceil(2) {
                let even = t.xi(2 * p).unwrap();
                if 2 * p < m {
                    assert_eq!(t.xi(2 * p + 1).unwrap(), even - 1, "m={m} p={p}");
                }
            }
        }
    }

    #[test]
    fn eq5_two_active_leaves() {
        // ξ_2^t = m·log_m(t) − 1
        for (m, n) in [(2u64, 6u32), (4, 3), (3, 4), (8, 2)] {
            let tb = table(m, n);
            assert_eq!(tb.xi(2).unwrap(), m * u64::from(n) - 1, "m={m} n={n}");
        }
    }

    #[test]
    fn eq6_two_t_over_m_leaves() {
        // ξ_{2t/m}^t = (t−1)/(m−1) + (t − 2t/m)
        for (m, n) in [(2u64, 6u32), (4, 3), (3, 3)] {
            let tb = table(m, n);
            let t = tb.shape().leaves();
            let expect = (t - 1) / (m - 1) + (t - 2 * t / m);
            assert_eq!(tb.xi(2 * t / m).unwrap(), expect, "m={m} n={n}");
        }
    }

    #[test]
    fn eq7_all_leaves_active() {
        // ξ_t^t = (t−1)/(m−1): every internal node collides exactly once.
        for (m, n) in [(2u64, 5u32), (4, 3), (3, 4), (5, 3)] {
            let tb = table(m, n);
            let t = tb.shape().leaves();
            assert_eq!(tb.xi(t).unwrap(), (t - 1) / (m - 1), "m={m} n={n}");
        }
    }

    #[test]
    fn eq3_odd_is_even_minus_one() {
        for (m, n) in [(2u64, 5u32), (4, 3), (3, 3)] {
            let tb = table(m, n);
            let t = tb.shape().leaves();
            for p in 0..t.div_ceil(2) {
                let even = tb.xi(2 * p).unwrap();
                let odd = tb.xi(2 * p + 1).unwrap();
                let expect = if p == 0 { 0 } else { even - 1 };
                assert_eq!(odd, expect, "m={m} n={n} p={p}");
            }
        }
    }

    #[test]
    fn eq8_derivative() {
        // ξ_{2p+2}^t − ξ_{2p}^t = m(log_m t − ⌊log_m(mp)⌋) − 2, p ∈ [1, t/2 − 1]
        use crate::geometry::floor_log;
        for (m, n) in [(2u64, 6u32), (4, 3), (3, 4)] {
            let tb = table(m, n);
            let t = tb.shape().leaves();
            for p in 1..(t / 2) {
                let lhs = tb.xi(2 * p + 2).unwrap() as i64 - tb.xi(2 * p).unwrap() as i64;
                let rhs =
                    m as i64 * (i64::from(n) - i64::from(floor_log(m, m * p))) - 2;
                assert_eq!(lhs, rhs, "m={m} n={n} p={p}");
            }
        }
    }

    #[test]
    fn eq15_tail_is_linear() {
        // For k ∈ [2t/m, t]: ξ_k^t = (mt−1)/(m−1) − k.
        for (m, n) in [(2u64, 6u32), (4, 3), (3, 4)] {
            let tb = table(m, n);
            let t = tb.shape().leaves();
            for k in (2 * t / m)..=t {
                assert_eq!(
                    tb.xi(k).unwrap(),
                    (m * t - 1) / (m - 1) - k,
                    "m={m} n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn rejects_out_of_range_k() {
        let tb = table(2, 3);
        assert_eq!(
            tb.xi(9),
            Err(TreeError::TooManyActiveLeaves { k: 9, t: 8 })
        );
    }

    #[test]
    fn rejects_huge_tables() {
        let shape = TreeShape::new(2, 25).unwrap();
        assert!(SearchTimeTable::compute(shape).is_err());
    }

    #[test]
    fn envelope_is_monotone_and_dominates_the_table() {
        for (m, n) in [(2u64, 6u32), (4, 3), (3, 4)] {
            let tb = table(m, n);
            let env = tb.xi_envelope();
            assert_eq!(env.len(), tb.as_slice().len());
            assert_eq!(env[0], 0);
            assert_eq!(env[1], 0);
            let mut expect_max = 0;
            for k in 2..env.len() {
                assert!(env[k] >= env[k - 1], "m={m} n={n} k={k}: not monotone");
                assert!(env[k] >= tb.as_slice()[k], "m={m} n={n} k={k}: below ξ");
                expect_max = expect_max.max(tb.as_slice()[k]);
                assert_eq!(env[k], expect_max, "m={m} n={n} k={k}");
            }
        }
    }

    #[test]
    fn iter_covers_all_k() {
        let tb = table(3, 2);
        let pairs: Vec<_> = tb.iter().collect();
        assert_eq!(pairs.len(), 10);
        assert_eq!(pairs[0], (0, 1));
        assert_eq!(pairs[1], (1, 0));
    }

    #[test]
    fn xi_exact_matches_table() {
        let shape = TreeShape::new(4, 2).unwrap();
        let tb = SearchTimeTable::compute(shape).unwrap();
        for k in 0..=16 {
            assert_eq!(xi_exact(shape, k).unwrap(), tb.xi(k).unwrap());
        }
    }
}
