//! Direct construction of worst-case leaf placements.
//!
//! [`crate::search::worst_case_exhaustive`] proves achievability of
//! `ξ_k^t` by brute force over all `binomial(t, k)` subsets, which caps out
//! around 30 leaves. This module constructs a worst-case witness
//! **directly** by tracing back the Eq. (1) dynamic program: at every
//! internal node, the active-leaf count is split over the `m` children by
//! the composition maximising the children's summed worst cases (a
//! max-plus knapsack over the child table), recursively. The result is an
//! explicit subset whose replayed search costs exactly `ξ_k^t`, for trees
//! far beyond exhaustive reach (tested to `t = 4096`).

use crate::error::TreeError;
use crate::exact::SearchTimeTable;
use crate::geometry::TreeShape;
use std::sync::Arc;

/// Constructs a set of `k` leaves whose deterministic search costs exactly
/// `ξ_k^t`, in `O(k·t)` time after an `O(t²)` table build.
///
/// # Errors
///
/// Returns [`TreeError::TooManyActiveLeaves`] if `k > t` and propagates
/// table-construction failures for oversized trees.
///
/// # Examples
///
/// ```
/// use ddcr_tree::{closed_form, search, witness, TreeShape};
///
/// # fn main() -> Result<(), ddcr_tree::TreeError> {
/// let shape = TreeShape::new(4, 3)?; // 64-leaf quaternary tree
/// let leaves = witness::worst_case_witness(shape, 10)?;
/// let replay = search::search_active_leaves(shape, &leaves)?;
/// assert_eq!(replay.search_slots(), closed_form::xi_closed(shape, 10)?);
/// # Ok(())
/// # }
/// ```
pub fn worst_case_witness(shape: TreeShape, k: u64) -> Result<Vec<u64>, TreeError> {
    let t = shape.leaves();
    if k > t {
        return Err(TreeError::TooManyActiveLeaves { k, t });
    }
    // One exact table per subtree height (they are shared across siblings,
    // and across calls via the process-wide cache).
    let mut tables: Vec<Arc<SearchTimeTable>> = Vec::with_capacity(shape.height() as usize);
    let mut cur = Some(shape);
    while let Some(s) = cur {
        tables.push(crate::cache::global().worst_case(s)?);
        cur = s.subtree();
    }
    // tables[0] is the full tree, tables[last] the single-level subtree.
    let mut out = Vec::with_capacity(k as usize);
    place(&tables, 0, 0, k, &mut out);
    Ok(out)
}

/// Recursively places `k` active leaves under the subtree at `offset`,
/// whose table is `tables[depth]`.
fn place(tables: &[Arc<SearchTimeTable>], depth: usize, offset: u64, k: u64, out: &mut Vec<u64>) {
    let shape = tables[depth].shape();
    let t = shape.leaves();
    debug_assert!(k <= t);
    if k == 0 {
        return;
    }
    if k == 1 {
        out.push(offset);
        return;
    }
    if depth + 1 == tables.len() {
        // Single level: any k distinct leaves realise 1 + m − k… every
        // placement is equivalent, take the leftmost k.
        out.extend(offset..offset + k);
        return;
    }
    let child = &tables[depth + 1];
    let s = child.shape().leaves();
    let m = shape.branching() as usize;
    // Knapsack over children: dp[x] = best Σ ξ over the first j children
    // using x active leaves; traceback recovers the worst composition.
    const NEG: i64 = i64::MIN / 4;
    let k = k as usize;
    let mut dp = vec![NEG; k + 1];
    dp[0] = 0;
    let mut choice = vec![vec![0u64; k + 1]; m];
    for choice_j in choice.iter_mut() {
        let mut next = vec![NEG; k + 1];
        #[allow(clippy::needless_range_loop)] // dp[x] read and indexed from nx
        for x in 0..=k {
            if dp[x] == NEG {
                continue;
            }
            let cap = s.min((k - x) as u64);
            for kj in 0..=cap {
                let cand = dp[x] + child.xi(kj).expect("kj <= s") as i64;
                let nx = x + kj as usize;
                if cand > next[nx] {
                    next[nx] = cand;
                    choice_j[nx] = kj;
                }
            }
        }
        dp = next;
    }
    // Traceback, then recurse left to right.
    let mut parts = vec![0u64; m];
    let mut x = k;
    for j in (0..m).rev() {
        parts[j] = choice[j][x];
        x -= parts[j] as usize;
    }
    debug_assert_eq!(x, 0);
    for (j, &kj) in parts.iter().enumerate() {
        place(tables, depth + 1, offset + j as u64 * s, kj, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form::xi_closed;
    use crate::search::{search_active_leaves, worst_case_exhaustive};

    #[test]
    fn witness_achieves_xi_on_small_trees() {
        for (m, n) in [(2u64, 3u32), (3, 2), (4, 2), (2, 4)] {
            let shape = TreeShape::new(m, n).unwrap();
            for k in 0..=shape.leaves() {
                let witness = worst_case_witness(shape, k).unwrap();
                assert_eq!(witness.len() as u64, k);
                let cost = search_active_leaves(shape, &witness).unwrap().search_slots();
                assert_eq!(cost, xi_closed(shape, k).unwrap(), "m={m} n={n} k={k}");
            }
        }
    }

    #[test]
    fn witness_matches_exhaustive_optimum() {
        let shape = TreeShape::new(2, 4).unwrap();
        for k in 0..=16u64 {
            let (best, _) = worst_case_exhaustive(shape, k).unwrap();
            let witness = worst_case_witness(shape, k).unwrap();
            let cost = search_active_leaves(shape, &witness).unwrap().search_slots();
            assert_eq!(cost, best, "k={k}");
        }
    }

    #[test]
    fn witness_achieves_xi_on_large_trees() {
        // Far beyond exhaustive reach: 4096-leaf trees.
        for (m, n) in [(2u64, 12u32), (4, 6), (8, 4)] {
            let shape = TreeShape::new(m, n).unwrap();
            let t = shape.leaves();
            for k in [2u64, 3, 17, t / 5, 2 * t / m, t - 1, t] {
                let witness = worst_case_witness(shape, k).unwrap();
                let cost = search_active_leaves(shape, &witness).unwrap().search_slots();
                assert_eq!(cost, xi_closed(shape, k).unwrap(), "m={m} n={n} k={k}");
            }
        }
    }

    #[test]
    fn witness_leaves_are_unique_and_in_range() {
        let shape = TreeShape::new(4, 3).unwrap();
        let witness = worst_case_witness(shape, 23).unwrap();
        let mut sorted = witness.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 23);
        assert!(sorted.iter().all(|&l| l < 64));
    }

    #[test]
    fn rejects_k_beyond_t() {
        let shape = TreeShape::new(2, 2).unwrap();
        assert!(worst_case_witness(shape, 5).is_err());
    }

    #[test]
    fn degenerate_cases() {
        let shape = TreeShape::new(3, 2).unwrap();
        assert!(worst_case_witness(shape, 0).unwrap().is_empty());
        assert_eq!(worst_case_witness(shape, 1).unwrap(), vec![0]);
    }
}
