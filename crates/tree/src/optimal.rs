//! Choosing the branching degree — "optimal m is derived from the general
//! expression of ξ_k^t" (paper, end of §4.1).
//!
//! For a fixed number of leaves (sources/classes) there may be several legal
//! branching degrees (`t` must be a power of `m`). Fig. 2 compares `m = 2`
//! against `m = 4` on 64 leaves; this module generalises the comparison:
//! given a minimum leaf count and a set of candidate degrees, it scores each
//! feasible `(m, n)` shape by its worst-case search times and reports the
//! best degree per activity level `k` as well as aggregate winners.

use crate::error::TreeError;
use crate::geometry::TreeShape;

/// Worst-case-search scores of one candidate shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeScore {
    /// The candidate shape.
    pub shape: TreeShape,
    /// `max_k ξ_k^t` — the single worst activity level.
    pub max_xi: u64,
    /// `Σ_k ξ_k^t` over `k ∈ [2, k_max]` — an aggregate cost proxy.
    pub sum_xi: u64,
    /// `ξ_2^t` — the light-contention cost (drives the FC term `S_2`).
    pub xi_two: u64,
}

/// Compares candidate branching degrees for trees with at least
/// `min_leaves` leaves, scoring worst-case search times over
/// `k ∈ [2, k_max]` (with `k_max` clamped to each shape's leaf count).
///
/// For each candidate `m`, the smallest power `m^n ≥ min_leaves` is used —
/// that is the shape a protocol designer would deploy for `min_leaves`
/// sources or deadline classes.
///
/// # Errors
///
/// Returns the first shape-construction or table error encountered; a
/// candidate `m < 2` yields [`TreeError::BranchingTooSmall`].
///
/// # Examples
///
/// ```
/// use ddcr_tree::optimal;
///
/// # fn main() -> Result<(), ddcr_tree::TreeError> {
/// let scores = optimal::compare_branching_degrees(64, &[2, 4, 8], 64)?;
/// // Paper Fig. 2: the quaternary 64-leaf tree beats the binary one.
/// assert!(scores[1].max_xi <= scores[0].max_xi);
/// # Ok(())
/// # }
/// ```
pub fn compare_branching_degrees(
    min_leaves: u64,
    candidates: &[u64],
    k_max: u64,
) -> Result<Vec<ShapeScore>, TreeError> {
    let mut scores = Vec::with_capacity(candidates.len());
    for &m in candidates {
        if m < 2 {
            return Err(TreeError::BranchingTooSmall { m });
        }
        let mut n = 1u32;
        while TreeShape::new(m, n)?.leaves() < min_leaves {
            n += 1;
        }
        let shape = TreeShape::new(m, n)?;
        let table = crate::cache::global().worst_case(shape)?;
        let hi = k_max.min(shape.leaves());
        let mut max_xi = 0;
        let mut sum_xi = 0;
        for k in 2..=hi {
            let v = table.xi(k)?;
            max_xi = max_xi.max(v);
            sum_xi += v;
        }
        scores.push(ShapeScore {
            shape,
            max_xi,
            sum_xi,
            xi_two: table.xi(2)?,
        });
    }
    Ok(scores)
}

/// Returns the candidate from `scores` minimising the single worst-case
/// search time (`max_xi`), breaking ties by `sum_xi` then smaller `m`.
pub fn best_by_worst_case(scores: &[ShapeScore]) -> Option<&ShapeScore> {
    scores.iter().min_by(|a, b| {
        a.max_xi
            .cmp(&b.max_xi)
            .then(a.sum_xi.cmp(&b.sum_xi))
            .then(a.shape.branching().cmp(&b.shape.branching()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_quaternary_beats_binary_on_64_leaves() {
        let scores = compare_branching_degrees(64, &[2, 4], 64).unwrap();
        let bin = &scores[0];
        let quad = &scores[1];
        assert_eq!(bin.shape.leaves(), 64);
        assert_eq!(quad.shape.leaves(), 64);
        assert!(quad.max_xi <= bin.max_xi);
        assert!(quad.sum_xi <= bin.sum_xi);
    }

    #[test]
    fn rounds_leaf_count_up_to_next_power() {
        let scores = compare_branching_degrees(50, &[2, 3, 4], 50).unwrap();
        assert_eq!(scores[0].shape.leaves(), 64); // 2^6
        assert_eq!(scores[1].shape.leaves(), 81); // 3^4
        assert_eq!(scores[2].shape.leaves(), 64); // 4^3
    }

    #[test]
    fn best_by_worst_case_picks_minimum() {
        let scores = compare_branching_degrees(64, &[2, 4, 8], 64).unwrap();
        let best = best_by_worst_case(&scores).unwrap();
        for s in &scores {
            assert!(best.max_xi <= s.max_xi);
        }
    }

    #[test]
    fn rejects_degenerate_branching() {
        assert_eq!(
            compare_branching_degrees(8, &[1], 8),
            Err(TreeError::BranchingTooSmall { m: 1 })
        );
    }

    #[test]
    fn empty_candidates_empty_scores() {
        let scores = compare_branching_degrees(8, &[], 8).unwrap();
        assert!(scores.is_empty());
        assert!(best_by_worst_case(&scores).is_none());
    }

    #[test]
    fn xi_two_matches_eq5() {
        let scores = compare_branching_degrees(64, &[2, 4], 64).unwrap();
        assert_eq!(scores[0].xi_two, 11); // 2·6 − 1
        assert_eq!(scores[1].xi_two, 11); // 4·3 − 1
    }
}
