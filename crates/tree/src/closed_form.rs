//! Closed-form expressions for `ξ_k^t` — Eq. (5)–(10) and Eq. (15).
//!
//! The paper derives from the divide-and-conquer recursion the closed form
//! (Eq. 10, for `t = m^n`):
//!
//! ```text
//! ξ_k^t = (m^⌈log_m(m⌊k/2⌋)⌉ − 1)/(m − 1)
//!         + m⌊k/2⌋·⌊log_m(t / (m⌊k/2⌋))⌋
//!         − (k − m⌊k/2⌋)                      k ∈ [2, t]
//! ξ_1^t = 0,  ξ_0^t = 1
//! ```
//!
//! evaluated here in **exact integer arithmetic** (the floor logarithm of the
//! rational `t/(m⌊k/2⌋)` is negative whenever `m⌊k/2⌋ > t`, which the naive
//! float evaluation gets wrong near boundaries). The named special values of
//! Eq. (5)–(8) and the linear tail Eq. (15) are exposed as separate
//! functions so that callers — and the paper's identities — can be checked
//! one by one.

use crate::error::TreeError;
use crate::geometry::{ceil_log, checked_pow, floor_log, floor_log_ratio, TreeShape};

/// Exact `ξ_k^t` by the closed form of Eq. (10).
///
/// This is `O(log t)` per evaluation and agrees with the dynamic program of
/// [`crate::exact`] and the recursion of [`crate::divide`] on every input
/// (property-tested).
///
/// # Errors
///
/// Returns [`TreeError::TooManyActiveLeaves`] if `k > t` and
/// [`TreeError::Overflow`] if an intermediate power exceeds `u64`.
///
/// # Examples
///
/// ```
/// use ddcr_tree::{closed_form, TreeShape};
///
/// # fn main() -> Result<(), ddcr_tree::TreeError> {
/// let shape = TreeShape::new(4, 3)?; // Fig. 1's 64-leaf quaternary tree
/// assert_eq!(closed_form::xi_closed(shape, 2)?, 11);
/// assert_eq!(closed_form::xi_closed(shape, 32)?, 21 + 64 - 2 * 64 / 4); // Eq. 6
/// assert_eq!(closed_form::xi_closed(shape, 64)?, 21); // Eq. 7
/// # Ok(())
/// # }
/// ```
pub fn xi_closed(shape: TreeShape, k: u64) -> Result<u64, TreeError> {
    let m = shape.branching();
    let t = shape.leaves();
    if k > t {
        return Err(TreeError::TooManyActiveLeaves { k, t });
    }
    match k {
        0 => return Ok(1),
        1 => return Ok(0),
        _ => {}
    }
    let h = k / 2; // ⌊k/2⌋ ≥ 1
    let mh = m
        .checked_mul(h)
        .ok_or(TreeError::Overflow { m, n: shape.height() })?;
    let e = ceil_log(m, mh);
    let pow = checked_pow(m, e).ok_or(TreeError::Overflow { m, n: shape.height() })?;
    let first = ((pow - 1) / (m - 1)) as i64;
    let second = mh as i64 * floor_log_ratio(m, t, mh);
    let third = k as i64 - mh as i64;
    let xi = first + second - third;
    debug_assert!(xi >= 0, "closed form went negative: m={m} t={t} k={k}");
    Ok(xi as u64)
}

/// Eq. (5): `ξ_2^t = m·log_m(t) − 1`, the worst-case time to isolate two
/// active leaves (the cost driving the time-tree term `S_2` of the
/// feasibility conditions).
pub fn xi_two(shape: TreeShape) -> u64 {
    shape.branching() * u64::from(shape.height()) - 1
}

/// Eq. (6): `ξ_{2t/m}^t = (t−1)/(m−1) + (t − 2t/m)`, the peak of the exact
/// curve (the active-leaf count with the costliest worst case).
pub fn xi_peak(shape: TreeShape) -> u64 {
    let t = shape.leaves();
    let m = shape.branching();
    (t - 1) / (m - 1) + (t - 2 * t / m)
}

/// The abscissa of the peak, `k = 2t/m`.
pub fn peak_k(shape: TreeShape) -> u64 {
    2 * shape.leaves() / shape.branching()
}

/// Eq. (7): `ξ_t^t = (t−1)/(m−1)` — with every leaf active, each internal
/// node collides exactly once and there are `(t−1)/(m−1)` of them.
pub fn xi_full(shape: TreeShape) -> u64 {
    shape.internal_nodes()
}

/// Eq. (8): the "derivative" `ξ_{2p+2}^t − ξ_{2p}^t
/// = m(log_m(t) − ⌊log_m(mp)⌋) − 2` for `p ∈ [1, ⌊t/2⌋ − 1]`.
///
/// # Panics
///
/// Panics if `p` is outside `[1, ⌊t/2⌋ − 1]`.
pub fn xi_derivative(shape: TreeShape, p: u64) -> i64 {
    let t = shape.leaves();
    let m = shape.branching();
    assert!(
        (1..t / 2).contains(&p),
        "Eq. 8 requires p in [1, t/2 - 1], got p={p} for t={t}"
    );
    m as i64 * (i64::from(shape.height()) - i64::from(floor_log(m, m * p))) - 2
}

/// Eq. (15): for `k ∈ [2t/m, t]` the exact function is the straight line
/// `ξ_k^t = (mt − 1)/(m − 1) − k` (so no asymptotic bound is needed there).
///
/// # Errors
///
/// Returns [`TreeError::TooManyActiveLeaves`] if `k` lies outside
/// `[2t/m, t]`.
pub fn xi_tail(shape: TreeShape, k: u64) -> Result<u64, TreeError> {
    let t = shape.leaves();
    let m = shape.branching();
    if !(2 * t / m..=t).contains(&k) {
        return Err(TreeError::TooManyActiveLeaves { k, t });
    }
    Ok((m * t - 1) / (m - 1) - k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::SearchTimeTable;

    #[test]
    fn closed_form_matches_dp_everywhere() {
        for (m, n) in [
            (2u64, 1u32),
            (2, 4),
            (2, 6),
            (3, 1),
            (3, 4),
            (4, 3),
            (5, 2),
            (6, 2),
            (9, 2),
        ] {
            let shape = TreeShape::new(m, n).unwrap();
            let table = SearchTimeTable::compute(shape).unwrap();
            for k in 0..=shape.leaves() {
                assert_eq!(
                    xi_closed(shape, k).unwrap(),
                    table.xi(k).unwrap(),
                    "m={m} n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn named_special_values_consistent_with_closed_form() {
        for (m, n) in [(2u64, 6u32), (4, 3), (3, 3)] {
            let shape = TreeShape::new(m, n).unwrap();
            assert_eq!(xi_closed(shape, 2).unwrap(), xi_two(shape));
            assert_eq!(xi_closed(shape, peak_k(shape)).unwrap(), xi_peak(shape));
            assert_eq!(
                xi_closed(shape, shape.leaves()).unwrap(),
                xi_full(shape)
            );
        }
    }

    #[test]
    fn derivative_matches_differences() {
        let shape = TreeShape::new(4, 3).unwrap();
        let table = SearchTimeTable::compute(shape).unwrap();
        for p in 1..shape.leaves() / 2 {
            let diff =
                table.xi(2 * p + 2).unwrap() as i64 - table.xi(2 * p).unwrap() as i64;
            assert_eq!(diff, xi_derivative(shape, p), "p={p}");
        }
    }

    #[test]
    fn tail_agrees_and_rejects_outside() {
        let shape = TreeShape::new(4, 3).unwrap();
        for k in 32..=64 {
            assert_eq!(
                xi_tail(shape, k).unwrap(),
                xi_closed(shape, k).unwrap(),
                "k={k}"
            );
        }
        assert!(xi_tail(shape, 31).is_err());
        assert!(xi_tail(shape, 65).is_err());
    }

    #[test]
    fn paper_fig2_claim_quaternary_beats_binary() {
        // Paper: ξ_k^64 (m=4) ≤ ξ_k^64 (m=2) for all k ∈ [2, 64].
        let bin = TreeShape::new(2, 6).unwrap();
        let quad = TreeShape::new(4, 3).unwrap();
        for k in 2..=64 {
            assert!(
                xi_closed(quad, k).unwrap() <= xi_closed(bin, k).unwrap(),
                "k={k}"
            );
        }
    }

    #[test]
    fn rejects_k_beyond_t() {
        let shape = TreeShape::new(2, 3).unwrap();
        assert!(xi_closed(shape, 9).is_err());
    }

    #[test]
    fn base_cases() {
        let shape = TreeShape::new(2, 3).unwrap();
        assert_eq!(xi_closed(shape, 0).unwrap(), 1);
        assert_eq!(xi_closed(shape, 1).unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "Eq. 8 requires")]
    fn derivative_rejects_p_zero() {
        xi_derivative(TreeShape::new(2, 3).unwrap(), 0);
    }
}
