//! # ddcr-tree — balanced m-ary tree collision-resolution analysis
//!
//! Exact and asymptotic worst-case search times for deterministic balanced
//! m-ary tree searches, reproducing section 4 (problems **P1** and **P2**)
//! of *"A Protocol and Correctness Proofs for Real-Time High-Performance
//! Broadcast Networks"* (J.-F. Hermant & G. Le Lann, ICDCS 1998).
//!
//! The central quantity is `ξ_k^t`, the worst-case number of channel slots
//! (collision slots + empty slots; successful transmissions are free) needed
//! by a deterministic m-ary tree search to isolate `k` active leaves out of
//! `t = m^n`. This crate provides **four independent routes** to it, all
//! cross-validated against one another:
//!
//! 1. [`exact::SearchTimeTable`] — `O(t²)` dynamic program on the defining
//!    recursion Eq. (1);
//! 2. [`divide::xi_divide`] — the paper's divide-and-conquer recursion
//!    Eq. (2)–(4), `O(m·log t)` per query;
//! 3. [`closed_form::xi_closed`] — the closed form Eq. (9)–(10) in exact
//!    integer arithmetic, plus the named identities Eq. (5)–(8), (15);
//! 4. [`search::worst_case_exhaustive`] — brute-force maximisation of the
//!    *actual replayed search* over all `binomial(t, k)` leaf subsets
//!    (small `t`), proving achievability.
//!
//! On top of these sit the asymptotic bound `ξ̃_k^t`
//! ([`asymptotic::xi_tilde`], Eq. 11–14), the multi-tree problem P2
//! ([`multi::MultiTreeProblem`], Eq. 16–19), branching-degree selection
//! ([`optimal`], the Fig. 2 comparison generalised), direct worst-case
//! witness construction ([`witness::worst_case_witness`], DP traceback,
//! achieving `ξ` on trees far beyond exhaustive reach), and the exact
//! average-case analysis ([`average::ExpectedSearchTable`], hypergeometric
//! recursion) behind the §3.1 channel-efficiency claims. The [`visit`]
//! module synthesizes the **pre-split** visit sequence of a *live* protocol
//! search (the root collision is paid on the channel, never probed), the
//! per-slot schedule the simulator's contention fast-forward is checked
//! against.
//!
//! ## Quickstart
//!
//! ```
//! use ddcr_tree::{asymptotic, closed_form, TreeShape};
//!
//! # fn main() -> Result<(), ddcr_tree::TreeError> {
//! // Fig. 1 of the paper: 64-leaf balanced quaternary tree.
//! let shape = TreeShape::new(4, 3)?;
//! let exact = closed_form::xi_closed(shape, 8)?;      // ξ_8^64 = 29
//! let bound = asymptotic::xi_tilde(shape, 8.0);        // coincides at k = 2·4^i
//! assert_eq!(exact, 29);
//! assert!((bound - 29.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asymptotic;
pub mod average;
pub mod cache;
pub mod closed_form;
pub mod divide;
mod error;
pub mod exact;
mod geometry;
pub mod multi;
pub mod optimal;
pub mod search;
pub mod visit;
pub mod witness;

pub use cache::TableCache;
pub use error::TreeError;
pub use visit::VisitCache;
pub use exact::SearchTimeTable;
pub use geometry::{ceil_log, ceil_log_ratio, checked_pow, floor_log, floor_log_ratio, TreeShape};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TreeShape>();
        assert_send_sync::<TreeError>();
        assert_send_sync::<SearchTimeTable>();
        assert_send_sync::<multi::MultiTreeProblem>();
    }

    #[test]
    fn crate_level_docs_example_holds() {
        let shape = TreeShape::new(4, 3).unwrap();
        assert_eq!(closed_form::xi_closed(shape, 8).unwrap(), 29);
    }
}
