//! Shapes of balanced m-ary trees and exact integer logarithm helpers.
//!
//! The paper studies balanced m-ary trees with `t = m^n` leaves,
//! `m ∈ ℕ*∖{1}`, `n ∈ ℕ*`. [`TreeShape`] captures such a shape and offers the
//! exact integer arithmetic (powers, floor/ceil logarithms of rationals)
//! needed by the closed forms of section 4, where expressions such as
//! `⌊log_m(t / (m⌊k/2⌋))⌋` must be evaluated without floating-point error —
//! including for ratios below 1, whose floor logarithm is negative.

use crate::error::TreeError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a balanced m-ary tree: branching degree `m`, height `n`,
/// and leaf count `t = m^n`.
///
/// # Examples
///
/// ```
/// use ddcr_tree::TreeShape;
///
/// # fn main() -> Result<(), ddcr_tree::TreeError> {
/// let shape = TreeShape::new(4, 3)?; // 64-leaf quaternary tree (paper Fig. 1)
/// assert_eq!(shape.leaves(), 64);
/// assert_eq!(shape.branching(), 4);
/// assert_eq!(shape.height(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TreeShape {
    m: u64,
    n: u32,
    t: u64,
}

impl TreeShape {
    /// Creates the shape of a balanced `m`-ary tree of height `n`
    /// (`t = m^n` leaves).
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::BranchingTooSmall`] if `m < 2`, and
    /// [`TreeError::Overflow`] if `m^n` does not fit in `u64` (or `n == 0`,
    /// which the paper excludes since `n ∈ ℕ*`).
    pub fn new(m: u64, n: u32) -> Result<Self, TreeError> {
        if m < 2 {
            return Err(TreeError::BranchingTooSmall { m });
        }
        if n == 0 {
            return Err(TreeError::Overflow { m, n });
        }
        let mut t: u64 = 1;
        for _ in 0..n {
            t = t.checked_mul(m).ok_or(TreeError::Overflow { m, n })?;
        }
        Ok(TreeShape { m, n, t })
    }

    /// Creates a shape from a branching degree and a leaf count.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::BranchingTooSmall`] if `m < 2`, and
    /// [`TreeError::NotAPowerOfM`] if `t` is not a positive power of `m`.
    pub fn from_leaves(m: u64, t: u64) -> Result<Self, TreeError> {
        if m < 2 {
            return Err(TreeError::BranchingTooSmall { m });
        }
        let mut cur = 1u64;
        let mut n = 0u32;
        while cur < t {
            cur = cur.checked_mul(m).ok_or(TreeError::NotAPowerOfM { t, m })?;
            n += 1;
        }
        if cur != t || n == 0 {
            return Err(TreeError::NotAPowerOfM { t, m });
        }
        Ok(TreeShape { m, n, t })
    }

    /// The branching degree `m`.
    pub fn branching(&self) -> u64 {
        self.m
    }

    /// The height `n` (number of levels of internal nodes).
    pub fn height(&self) -> u32 {
        self.n
    }

    /// The number of leaves `t = m^n`.
    pub fn leaves(&self) -> u64 {
        self.t
    }

    /// The shape of each of the `m` immediate subtrees, or `None` when the
    /// tree is a single level (`n == 1`, subtrees are leaves).
    pub fn subtree(&self) -> Option<TreeShape> {
        if self.n <= 1 {
            None
        } else {
            Some(TreeShape {
                m: self.m,
                n: self.n - 1,
                t: self.t / self.m,
            })
        }
    }

    /// Total number of internal nodes, `(t − 1) / (m − 1)`.
    ///
    /// This also equals `ξ_t^t` (Eq. 7): when every leaf is active, every
    /// internal node is visited exactly once and every visit is a collision.
    pub fn internal_nodes(&self) -> u64 {
        (self.t - 1) / (self.m - 1)
    }
}

impl fmt::Display for TreeShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-leaf balanced {}-ary tree", self.t, self.m)
    }
}

/// Returns `m^e`, or `None` on overflow.
pub fn checked_pow(m: u64, e: u32) -> Option<u64> {
    let mut acc: u64 = 1;
    for _ in 0..e {
        acc = acc.checked_mul(m)?;
    }
    Some(acc)
}

/// Exact `⌊log_m(num / den)⌋` for positive integers, allowing ratios below 1
/// (negative result).
///
/// Returns the unique `e` with `m^e ≤ num/den < m^(e+1)`.
///
/// # Panics
///
/// Panics if `m < 2`, `num == 0`, or `den == 0` — these have no logarithm.
pub fn floor_log_ratio(m: u64, num: u64, den: u64) -> i64 {
    assert!(m >= 2, "floor_log_ratio requires m >= 2");
    assert!(num > 0 && den > 0, "floor_log_ratio requires num, den > 0");
    let m = u128::from(m);
    let num = u128::from(num);
    let den = u128::from(den);
    if num >= den {
        // Largest e >= 0 with den * m^e <= num.
        let mut e: i64 = 0;
        let mut scaled = den;
        while scaled.saturating_mul(m) <= num {
            scaled *= m;
            e += 1;
        }
        e
    } else {
        // num/den < 1: smallest j >= 1 with num * m^j >= den gives e = -j,
        // unless num * m^j == den... that still satisfies m^{-j} == num/den,
        // so floor is exactly -j.
        let mut j: i64 = 0;
        let mut scaled = num;
        while scaled < den {
            scaled = scaled.saturating_mul(m);
            j += 1;
        }
        if scaled == den {
            -j
        } else {
            // m^{-j} > num/den > m^{-j-1}
            -j
        }
    }
}

/// Exact `⌈log_m(num / den)⌉` for positive integers, allowing ratios below 1.
///
/// Returns the unique `e` with `m^(e−1) < num/den ≤ m^e`.
///
/// # Panics
///
/// Panics if `m < 2`, `num == 0`, or `den == 0`.
pub fn ceil_log_ratio(m: u64, num: u64, den: u64) -> i64 {
    let fl = floor_log_ratio(m, num, den);
    // Exact power check: num/den == m^fl ?
    if is_exact_power_ratio(m, num, den, fl) {
        fl
    } else {
        fl + 1
    }
}

/// True iff `num / den == m^e` exactly.
fn is_exact_power_ratio(m: u64, num: u64, den: u64, e: i64) -> bool {
    let m = u128::from(m);
    let num = u128::from(num);
    let den = u128::from(den);
    if e >= 0 {
        let mut p: u128 = 1;
        for _ in 0..e {
            p = match p.checked_mul(m) {
                Some(v) => v,
                None => return false,
            };
        }
        num == den.saturating_mul(p)
    } else {
        let mut p: u128 = 1;
        for _ in 0..(-e) {
            p = match p.checked_mul(m) {
                Some(v) => v,
                None => return false,
            };
        }
        num.saturating_mul(p) == den
    }
}

/// Exact `⌊log_m(x)⌋` for a positive integer `x`.
///
/// # Panics
///
/// Panics if `m < 2` or `x == 0`.
pub fn floor_log(m: u64, x: u64) -> u32 {
    floor_log_ratio(m, x, 1) as u32
}

/// Exact `⌈log_m(x)⌉` for a positive integer `x`.
///
/// # Panics
///
/// Panics if `m < 2` or `x == 0`.
pub fn ceil_log(m: u64, x: u64) -> u32 {
    ceil_log_ratio(m, x, 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_constructors_agree() {
        let a = TreeShape::new(4, 3).unwrap();
        let b = TreeShape::from_leaves(4, 64).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.leaves(), 64);
        assert_eq!(a.internal_nodes(), 21);
    }

    #[test]
    fn shape_rejects_bad_inputs() {
        assert_eq!(
            TreeShape::new(1, 3),
            Err(TreeError::BranchingTooSmall { m: 1 })
        );
        assert_eq!(TreeShape::new(2, 0), Err(TreeError::Overflow { m: 2, n: 0 }));
        assert!(TreeShape::new(2, 64).is_err());
        assert_eq!(
            TreeShape::from_leaves(4, 32),
            Err(TreeError::NotAPowerOfM { t: 32, m: 4 })
        );
        assert_eq!(
            TreeShape::from_leaves(4, 1),
            Err(TreeError::NotAPowerOfM { t: 1, m: 4 })
        );
    }

    #[test]
    fn subtree_walks_down_to_leaves() {
        let mut shape = Some(TreeShape::new(3, 4).unwrap());
        let mut leaves = vec![];
        while let Some(s) = shape {
            leaves.push(s.leaves());
            shape = s.subtree();
        }
        assert_eq!(leaves, vec![81, 27, 9, 3]);
    }

    #[test]
    fn display_mentions_leaves_and_arity() {
        let s = TreeShape::new(2, 6).unwrap();
        assert_eq!(s.to_string(), "64-leaf balanced 2-ary tree");
    }

    #[test]
    fn floor_log_basic() {
        assert_eq!(floor_log(2, 1), 0);
        assert_eq!(floor_log(2, 2), 1);
        assert_eq!(floor_log(2, 3), 1);
        assert_eq!(floor_log(2, 4), 2);
        assert_eq!(floor_log(10, 999), 2);
        assert_eq!(floor_log(10, 1000), 3);
    }

    #[test]
    fn ceil_log_basic() {
        assert_eq!(ceil_log(2, 1), 0);
        assert_eq!(ceil_log(2, 2), 1);
        assert_eq!(ceil_log(2, 3), 2);
        assert_eq!(ceil_log(2, 4), 2);
        assert_eq!(ceil_log(4, 128), 4); // used by Eq. 10 at m=4, t=64, k=64
    }

    #[test]
    fn floor_log_ratio_below_one() {
        // log_4(64/128) = -0.5 -> floor -1
        assert_eq!(floor_log_ratio(4, 64, 128), -1);
        // log_2(1/8) = -3 exactly
        assert_eq!(floor_log_ratio(2, 1, 8), -3);
        assert_eq!(ceil_log_ratio(2, 1, 8), -3);
        // log_3(9/12) ~ -0.26 -> floor -1, ceil 0
        assert_eq!(floor_log_ratio(3, 9, 12), -1);
        assert_eq!(ceil_log_ratio(3, 9, 12), 0);
    }

    #[test]
    fn floor_ceil_log_ratio_consistency() {
        for m in 2u64..=7 {
            for num in 1u64..=200 {
                for den in 1u64..=50 {
                    let fl = floor_log_ratio(m, num, den);
                    let cl = ceil_log_ratio(m, num, den);
                    let lg = (num as f64 / den as f64).ln() / (m as f64).ln();
                    // Compare against floating point with a tolerance guard:
                    // only assert when far from an integer boundary.
                    if (lg - lg.round()).abs() > 1e-9 {
                        assert_eq!(fl, lg.floor() as i64, "m={m} num={num} den={den}");
                        assert_eq!(cl, lg.ceil() as i64, "m={m} num={num} den={den}");
                    } else {
                        assert_eq!(fl, cl, "exact power m={m} num={num} den={den}");
                    }
                }
            }
        }
    }

    #[test]
    fn checked_pow_overflow() {
        assert_eq!(checked_pow(2, 10), Some(1024));
        assert_eq!(checked_pow(2, 64), None);
        assert_eq!(checked_pow(u64::MAX, 2), None);
        assert_eq!(checked_pow(7, 0), Some(1));
    }
}
