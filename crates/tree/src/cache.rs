//! Process-wide memoized search-time tables.
//!
//! Experiment sweeps run many `(protocol, scenario, seed)` jobs that all
//! need the same worst-case tables `ξ_k^t` (Eq. 1) and expected tables
//! `A_t(k)` for a handful of tree shapes. Recomputing the `O(t²)` dynamic
//! program per run is pure waste: the tables are pure functions of
//! [`TreeShape`]. This module caches them once per process behind a
//! `parking_lot::RwLock`-guarded map, shared safely across sweep worker
//! threads.
//!
//! Two counter sets make cache behaviour observable:
//!
//! * **global** hit/miss counters (process lifetime, all threads), and
//! * **thread-local** counters, which a sweep worker can snapshot before
//!   and after a job to attribute cache traffic to that job exactly
//!   (each worker runs one job at a time).
//!
//! Lookups return `Arc`s, so a hit is a pointer clone — no table copy.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

use crate::average::ExpectedSearchTable;
use crate::error::TreeError;
use crate::exact::SearchTimeTable;
use crate::geometry::TreeShape;
use crate::multi::{ExactOptimum, MultiTreeProblem};

/// Snapshot of cache traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute a table.
    pub misses: u64,
}

impl CacheStats {
    /// Counter difference `self - earlier` (for per-job attribution).
    #[must_use]
    pub fn since(&self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }
}

thread_local! {
    static THREAD_HITS: Cell<u64> = const { Cell::new(0) };
    static THREAD_MISSES: Cell<u64> = const { Cell::new(0) };
}

/// Memoized store of per-shape analysis tables.
///
/// Most callers want the process-wide [`global`] instance; separate
/// instances exist for tests that need isolated counters.
#[derive(Debug, Default)]
pub struct TableCache {
    worst: RwLock<HashMap<TreeShape, Arc<SearchTimeTable>>>,
    expected: RwLock<HashMap<TreeShape, Arc<ExpectedSearchTable>>>,
    multi_bounds: RwLock<HashMap<MultiTreeProblem, f64>>,
    multi_exacts: RwLock<HashMap<MultiTreeProblem, Arc<ExactOptimum>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TableCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        TableCache::default()
    }

    /// The worst-case table `ξ_·^t` for `shape`, computed at most once per
    /// cache instance.
    ///
    /// # Errors
    ///
    /// Propagates [`TreeError`] from [`SearchTimeTable::compute`] on the
    /// first (computing) lookup of a shape.
    pub fn worst_case(&self, shape: TreeShape) -> Result<Arc<SearchTimeTable>, TreeError> {
        if let Some(table) = self.worst.read().get(&shape) {
            self.count(true);
            return Ok(Arc::clone(table));
        }
        // Compute outside the write lock; a racing thread may compute the
        // same table, in which case the first insert wins and both results
        // are identical (the table is a pure function of the shape).
        let computed = Arc::new(SearchTimeTable::compute(shape)?);
        self.count(false);
        let mut map = self.worst.write();
        Ok(Arc::clone(map.entry(shape).or_insert(computed)))
    }

    /// The expected-case table `A_t(·)` for `shape`, computed at most once
    /// per cache instance.
    ///
    /// # Errors
    ///
    /// Propagates [`TreeError`] from [`ExpectedSearchTable::compute`] on
    /// the first (computing) lookup of a shape.
    pub fn expected(&self, shape: TreeShape) -> Result<Arc<ExpectedSearchTable>, TreeError> {
        if let Some(table) = self.expected.read().get(&shape) {
            self.count(true);
            return Ok(Arc::clone(table));
        }
        let computed = Arc::new(ExpectedSearchTable::compute(shape)?);
        self.count(false);
        let mut map = self.expected.write();
        Ok(Arc::clone(map.entry(shape).or_insert(computed)))
    }

    /// Memoized `ξ_k^t` (equivalent to [`crate::exact::xi_exact`], minus
    /// the recomputation).
    ///
    /// # Errors
    ///
    /// Propagates table-construction errors and
    /// [`TreeError::TooManyActiveLeaves`] for `k > t`.
    pub fn xi(&self, shape: TreeShape, k: u64) -> Result<u64, TreeError> {
        self.worst_case(shape)?.xi(k)
    }

    /// Memoized P2 asymptotic bound `v·ξ̃_{u/v}^t`
    /// ([`MultiTreeProblem::bound`]). The bound is a pure closed-form
    /// function of the instance, so the cached value is bit-exact across
    /// threads and lookups.
    pub fn multi_bound(&self, problem: MultiTreeProblem) -> f64 {
        if let Some(&bound) = self.multi_bounds.read().get(&problem) {
            self.count(true);
            return bound;
        }
        let computed = problem.bound();
        self.count(false);
        let mut map = self.multi_bounds.write();
        *map.entry(problem).or_insert(computed)
    }

    /// Memoized P2 exact optimum ([`MultiTreeProblem::exact_optimum`]),
    /// computed at most once per cache instance.
    ///
    /// The `O(v·u·t)` dynamic program itself pulls its `ξ_k^t` table
    /// through the process-wide [`global`] cache, so a computing lookup on
    /// a non-global instance still counts one global table lookup.
    ///
    /// # Errors
    ///
    /// Propagates [`TreeError`] from the first (computing) lookup.
    pub fn multi_exact(&self, problem: MultiTreeProblem) -> Result<Arc<ExactOptimum>, TreeError> {
        if let Some(optimum) = self.multi_exacts.read().get(&problem) {
            self.count(true);
            return Ok(Arc::clone(optimum));
        }
        let computed = Arc::new(problem.exact_optimum()?);
        self.count(false);
        let mut map = self.multi_exacts.write();
        Ok(Arc::clone(map.entry(problem).or_insert(computed)))
    }

    /// Number of distinct entries currently cached (all kinds).
    #[must_use]
    pub fn entries(&self) -> usize {
        self.worst.read().len()
            + self.expected.read().len()
            + self.multi_bounds.read().len()
            + self.multi_exacts.read().len()
    }

    /// Global (all-thread) hit/miss counters for this cache instance.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    fn count(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
            THREAD_HITS.with(|c| c.set(c.get() + 1));
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            THREAD_MISSES.with(|c| c.set(c.get() + 1));
        }
    }
}

/// The process-wide cache used by sweeps and experiment binaries.
pub fn global() -> &'static TableCache {
    static GLOBAL: OnceLock<TableCache> = OnceLock::new();
    GLOBAL.get_or_init(TableCache::new)
}

/// This thread's cumulative hit/miss counters (across *all* cache
/// instances it touched). Snapshot before and after a job and subtract
/// ([`CacheStats::since`]) to attribute traffic to the job.
#[must_use]
pub fn thread_stats() -> CacheStats {
    CacheStats {
        hits: THREAD_HITS.with(Cell::get),
        misses: THREAD_MISSES.with(Cell::get),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_hits() {
        let cache = TableCache::new();
        let shape = TreeShape::new(4, 3).unwrap();
        let first = cache.worst_case(shape).unwrap();
        let second = cache.worst_case(shape).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn cached_xi_matches_fresh_computation() {
        let cache = TableCache::new();
        for (m, n) in [(2u64, 5u32), (3, 3), (4, 3)] {
            let shape = TreeShape::new(m, n).unwrap();
            let fresh = SearchTimeTable::compute(shape).unwrap();
            for k in 0..=shape.leaves() {
                assert_eq!(cache.xi(shape, k).unwrap(), fresh.xi(k).unwrap());
            }
        }
    }

    #[test]
    fn expected_tables_are_shared() {
        let cache = TableCache::new();
        let shape = TreeShape::new(2, 4).unwrap();
        let a = cache.expected(shape).unwrap();
        let b = cache.expected(shape).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn errors_propagate_and_are_not_cached() {
        let cache = TableCache::new();
        let huge = TreeShape::new(2, 25).unwrap();
        assert!(cache.worst_case(huge).is_err());
        assert_eq!(cache.entries(), 0);
    }

    #[test]
    fn thread_stats_attribute_traffic() {
        let cache = TableCache::new();
        let shape = TreeShape::new(3, 2).unwrap();
        let before = thread_stats();
        cache.worst_case(shape).unwrap();
        cache.worst_case(shape).unwrap();
        let delta = thread_stats().since(before);
        assert_eq!(delta, CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn multi_bounds_are_memoized_and_counted() {
        let cache = TableCache::new();
        let shape = TreeShape::new(2, 4).unwrap();
        let problem = MultiTreeProblem::new(shape, 10, 3).unwrap();
        let first = cache.multi_bound(problem);
        let second = cache.multi_bound(problem);
        assert_eq!(first.to_bits(), second.to_bits(), "cached bound must be bit-exact");
        assert_eq!(first.to_bits(), problem.bound().to_bits());
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn multi_exacts_are_shared_and_match_fresh_computation() {
        let cache = TableCache::new();
        let shape = TreeShape::new(2, 4).unwrap();
        let problem = MultiTreeProblem::new(shape, 14, 3).unwrap();
        let a = cache.multi_exact(problem).unwrap();
        let b = cache.multi_exact(problem).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*a, problem.exact_optimum().unwrap());
    }

    #[test]
    fn distinct_multi_problems_get_distinct_entries() {
        let cache = TableCache::new();
        let shape = TreeShape::new(2, 4).unwrap();
        let a = MultiTreeProblem::new(shape, 10, 3).unwrap();
        let b = MultiTreeProblem::new(shape, 12, 3).unwrap();
        cache.multi_bound(a);
        cache.multi_bound(b);
        assert_eq!(cache.entries(), 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn distinct_shapes_get_distinct_tables() {
        let cache = TableCache::new();
        let a = cache.worst_case(TreeShape::new(2, 3).unwrap()).unwrap();
        let b = cache.worst_case(TreeShape::new(4, 2).unwrap()).unwrap();
        assert_ne!(a.shape(), b.shape());
        assert_eq!(cache.stats().misses, 2);
    }
}
