//! Pre-split visit-sequence synthesis: the search as the *protocol* runs it.
//!
//! [`crate::search::search_active_leaves`] replays the textbook rooted
//! search of Eq. (1), where a root with `k ≥ 2` active leaves costs one
//! collision slot before the split. The CSMA/DDCR automaton never pays that
//! slot: the collision that *triggered* the resolution already happened on
//! the channel, so the replicated search starts with the root's `m`
//! children on its stack and probes them directly. This module synthesizes
//! that **pre-split** visit sequence — the exact per-slot probe order a
//! live tree search produces on the wire — and relates its cost to the
//! rooted quantity `ξ_k^t`:
//!
//! * `k ≥ 2` — pre-split cost = rooted cost − 1 (the root collision is
//!   never probed);
//! * `k = 1` — the rooted search transmits free at the root (cost 0), the
//!   pre-split search pays `m − 1` empty probes around the lone success;
//! * `k = 0` — one rooted empty slot becomes `m` empty child probes.
//!
//! [`presplit_worst_case`] lifts the same relation to the worst case, and
//! [`VisitCache`] memoizes synthesized sequences for the differential
//! harnesses that replay many searches over the same few leaf sets.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::cache::CacheStats;
use crate::error::TreeError;
use crate::geometry::TreeShape;
use crate::search::{search_active_leaves, SearchOutcome};

/// Synthesizes the pre-split visit sequence over the given active leaves:
/// the probe-by-probe channel schedule of a live protocol tree search,
/// starting from the root's `m` children (the root itself is never probed).
///
/// The returned [`SearchOutcome`] counts collision and empty slots exactly
/// as the replicated automaton observes them, and lists probes in channel
/// order.
///
/// # Errors
///
/// Returns [`TreeError::LeafOutOfRange`] if any leaf index is `≥ t`.
/// Duplicate leaf indices are tolerated (a set is formed internally).
///
/// # Examples
///
/// ```
/// use ddcr_tree::{search, visit, TreeShape};
///
/// # fn main() -> Result<(), ddcr_tree::TreeError> {
/// let shape = TreeShape::new(2, 2)?; // 4 leaves
/// let rooted = search::search_active_leaves(shape, &[0, 1])?;
/// let live = visit::presplit_active_leaves(shape, &[0, 1])?;
/// // The live search skips the root collision the channel already paid.
/// assert_eq!(live.search_slots(), rooted.search_slots() - 1);
/// assert_eq!(live.transmissions, rooted.transmissions);
/// # Ok(())
/// # }
/// ```
pub fn presplit_active_leaves(
    shape: TreeShape,
    active: &[u64],
) -> Result<SearchOutcome, TreeError> {
    let rooted = search_active_leaves(shape, active)?;
    let mut sorted: Vec<u64> = active.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() >= 2 {
        // The rooted probe sequence opens with the root collision; the live
        // search runs the identical schedule from the second probe on.
        return Ok(SearchOutcome {
            collision_slots: rooted.collision_slots - 1,
            empty_slots: rooted.empty_slots,
            transmissions: rooted.transmissions,
            probes: rooted.probes[1..].to_vec(),
        });
    }
    // 0 or 1 active leaves: the rooted search never splits, so synthesize
    // the m child probes directly.
    let m = shape.branching();
    let child = shape.leaves() / m;
    let mut out = SearchOutcome {
        collision_slots: 0,
        empty_slots: 0,
        transmissions: Vec::with_capacity(sorted.len()),
        probes: Vec::new(),
    };
    for i in 0..m {
        let sub = search_active_leaves_in(i * child, child, &sorted, &mut out);
        debug_assert!(sub <= 1);
    }
    Ok(out)
}

/// Probes one root-child interval for the degenerate `k ≤ 1` case (at most
/// one active leaf overall, so every child resolves in a single probe),
/// accumulating into `out`; returns the number of active leaves seen.
fn search_active_leaves_in(
    lo: u64,
    width: u64,
    sorted: &[u64],
    out: &mut SearchOutcome,
) -> u64 {
    let begin = sorted.partition_point(|&x| x < lo);
    let end = sorted.partition_point(|&x| x < lo + width);
    let slice = &sorted[begin..end];
    match slice.len() {
        0 => {
            out.empty_slots += 1;
            out.probes.push(crate::search::Probe {
                lo,
                width,
                outcome: crate::search::ProbeOutcome::Empty,
            });
        }
        1 => {
            let leaf = slice[0];
            out.transmissions.push(leaf);
            out.probes.push(crate::search::Probe {
                lo,
                width,
                outcome: crate::search::ProbeOutcome::Success { leaf },
            });
        }
        _ => unreachable!("caller guarantees k ≤ 1 overall"),
    }
    slice.len() as u64
}

/// Worst-case pre-split search cost over all `k`-subsets of leaves: the
/// exact per-search slot count a live tree search can exhibit, related to
/// the rooted `ξ_k^t` by the root-probe discount.
///
/// # Errors
///
/// Propagates table-construction errors and
/// [`TreeError::TooManyActiveLeaves`] for `k > t`.
pub fn presplit_worst_case(shape: TreeShape, k: u64) -> Result<u64, TreeError> {
    let m = shape.branching();
    match k {
        0 => Ok(m),
        1 => Ok(m - 1),
        _ => Ok(crate::cache::global().xi(shape, k)? - 1),
    }
}

/// Bounded memo of synthesized pre-split visit sequences.
///
/// Differential harnesses replay many runs over the same few leaf sets
/// (bisection matrices sweep stepper configurations, not workloads), so the
/// sequences are worth caching — but unlike the per-shape tables in
/// [`crate::cache`], the key space `(shape, leaf set)` is unbounded.
/// The cache therefore holds at most `max_entries` sequences; lookups past
/// capacity still compute (and count as misses), they just aren't retained.
#[derive(Debug)]
pub struct VisitCache {
    max_entries: usize,
    map: RwLock<VisitMap>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Memo storage: one synthesized outcome per `(shape, leaf set)` key.
type VisitMap = HashMap<(TreeShape, Vec<u64>), Arc<SearchOutcome>>;

impl VisitCache {
    /// Creates a cache retaining at most `max_entries` sequences.
    #[must_use]
    pub fn new(max_entries: usize) -> Self {
        VisitCache {
            max_entries,
            map: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The pre-split visit sequence for `(shape, active)`, memoized.
    ///
    /// The key is the *set* of leaves (sorted, deduplicated), so permuted
    /// or duplicated inputs hit the same entry.
    ///
    /// # Errors
    ///
    /// Propagates [`TreeError::LeafOutOfRange`] from the synthesis on a
    /// computing lookup; errors are not cached.
    pub fn presplit(
        &self,
        shape: TreeShape,
        active: &[u64],
    ) -> Result<Arc<SearchOutcome>, TreeError> {
        let mut leaves: Vec<u64> = active.to_vec();
        leaves.sort_unstable();
        leaves.dedup();
        let key = (shape, leaves);
        if let Some(cached) = self.map.read().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(cached));
        }
        let computed = Arc::new(presplit_active_leaves(shape, &key.1)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.write();
        if map.len() < self.max_entries {
            return Ok(Arc::clone(map.entry(key).or_insert(computed)));
        }
        Ok(computed)
    }

    /// Number of sequences currently retained.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.map.read().len()
    }

    /// Hit/miss counters for this cache instance.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{worst_case_exhaustive, ProbeOutcome};

    #[test]
    fn presplit_discounts_exactly_one_root_collision() {
        let shape = TreeShape::new(2, 4).unwrap();
        let subsets: Vec<Vec<u64>> = vec![
            vec![0, 15],
            vec![0, 1, 2, 3],
            vec![0, 4, 8, 12],
            vec![5, 6, 7, 8, 9],
            (0..16).collect(),
        ];
        for s in subsets {
            let rooted = search_active_leaves(shape, &s).unwrap();
            let live = presplit_active_leaves(shape, &s).unwrap();
            assert_eq!(live.search_slots(), rooted.search_slots() - 1);
            assert_eq!(live.collision_slots, rooted.collision_slots - 1);
            assert_eq!(live.empty_slots, rooted.empty_slots);
            assert_eq!(live.transmissions, rooted.transmissions);
            assert_eq!(live.probes.as_slice(), &rooted.probes[1..]);
        }
    }

    #[test]
    fn singleton_pays_m_minus_one_empty_probes() {
        for (m, n) in [(2u64, 3u32), (3, 2), (4, 2)] {
            let shape = TreeShape::new(m, n).unwrap();
            for leaf in 0..shape.leaves() {
                let live = presplit_active_leaves(shape, &[leaf]).unwrap();
                assert_eq!(live.search_slots(), m - 1, "m={m} leaf={leaf}");
                assert_eq!(live.empty_slots, m - 1);
                assert_eq!(live.transmissions, vec![leaf]);
            }
        }
    }

    #[test]
    fn empty_set_pays_m_empty_probes() {
        for (m, n) in [(2u64, 3u32), (3, 2), (4, 2)] {
            let shape = TreeShape::new(m, n).unwrap();
            let live = presplit_active_leaves(shape, &[]).unwrap();
            assert_eq!(live.search_slots(), m);
            assert!(live
                .probes
                .iter()
                .all(|p| p.outcome == ProbeOutcome::Empty));
        }
    }

    #[test]
    fn probe_schedule_opens_with_the_root_children_in_order() {
        let shape = TreeShape::new(3, 2).unwrap(); // 9 leaves, children of 3
        let live = presplit_active_leaves(shape, &[0, 4]).unwrap();
        assert_eq!((live.probes[0].lo, live.probes[0].width), (0, 3));
        // Child 0 holds one leaf (free success, still a probe record), so
        // the next probed interval is child 1.
        let second_interval = live
            .probes
            .iter()
            .find(|p| p.lo == 3)
            .expect("child 1 probed");
        assert_eq!(second_interval.width, 3);
    }

    #[test]
    fn worst_case_matches_exhaustive_presplit_maximum() {
        for (m, n) in [(2u64, 3u32), (3, 2)] {
            let shape = TreeShape::new(m, n).unwrap();
            for k in 0..=shape.leaves() {
                let expected = presplit_worst_case(shape, k).unwrap();
                if k >= 2 {
                    let (rooted_worst, witness) =
                        worst_case_exhaustive(shape, k).unwrap();
                    let live = presplit_active_leaves(shape, &witness).unwrap();
                    assert_eq!(live.search_slots(), rooted_worst - 1);
                    assert_eq!(expected, rooted_worst - 1, "m={m} k={k}");
                } else {
                    assert_eq!(expected, if k == 0 { m } else { m - 1 });
                }
            }
        }
    }

    #[test]
    fn cache_hits_on_permuted_and_duplicated_inputs() {
        let cache = VisitCache::new(8);
        let shape = TreeShape::new(2, 3).unwrap();
        let a = cache.presplit(shape, &[5, 1, 3]).unwrap();
        let b = cache.presplit(shape, &[3, 1, 5, 1]).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn cache_stops_retaining_at_capacity_but_keeps_computing() {
        let cache = VisitCache::new(2);
        let shape = TreeShape::new(2, 3).unwrap();
        for leaf in 0..5u64 {
            let out = cache.presplit(shape, &[leaf, leaf + 1]).unwrap();
            assert_eq!(out.transmissions, vec![leaf, leaf + 1]);
        }
        assert_eq!(cache.entries(), 2);
        assert_eq!(cache.stats().misses, 5);
        // Retained entries still hit.
        cache.presplit(shape, &[0, 1]).unwrap();
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn out_of_range_leaf_rejected_and_not_cached() {
        let cache = VisitCache::new(8);
        let shape = TreeShape::new(2, 2).unwrap();
        assert!(cache.presplit(shape, &[9]).is_err());
        assert_eq!(cache.entries(), 0);
    }
}
