//! Divide-and-conquer recursion for `ξ_k^t` — Eq. (2)–(4) of the paper.
//!
//! The paper proves (by induction on `t`, its ref 22) that the `ξ_k^t` function
//! Eq. (1) also satisfies:
//!
//! ```text
//! ξ_{2p}^t  = 1 + Σ_{i=0}^{m−1} ξ^{t/m}_{2⌊(min(p, t/m)+i)/m⌋} − 2·max(0, p − t/m)
//!                                             p ∈ [1, ⌊t/2⌋], n ≥ 2   (Eq. 2)
//! ξ_0^t     = 1
//! ξ_{2p+1}^t = ξ_{2p}^t − 1                   p ∈ [0, ⌈t/2⌉ − 1]      (Eq. 3)
//! ```
//!
//! with the single-level base case (Eq. 4):
//!
//! ```text
//! ξ_0^m = 1;  ξ_{2p}^m = 1 + m − 2p, p ∈ [1, ⌊m/2⌋];  ξ_{2p+1}^m = ξ_{2p}^m − 1.
//! ```
//!
//! Unlike the `O(t²)` dynamic program of [`crate::exact`], this recursion
//! evaluates a single `ξ_k^t` in `O(m·log_m t)` recursive calls, so it scales
//! to trees far beyond what a full table can hold. The crate's test suite
//! proves the two agree wherever both are computable.

use crate::error::TreeError;
use crate::geometry::TreeShape;

/// Evaluates `ξ_k^t` through the divide-and-conquer recursion (Eq. 2–4).
///
/// # Errors
///
/// Returns [`TreeError::TooManyActiveLeaves`] if `k > t`.
///
/// # Examples
///
/// ```
/// use ddcr_tree::{divide, TreeShape};
///
/// # fn main() -> Result<(), ddcr_tree::TreeError> {
/// let shape = TreeShape::new(4, 3)?;
/// assert_eq!(divide::xi_divide(shape, 2)?, 11);
/// // Works for trees whose full table would be enormous:
/// let big = TreeShape::new(2, 40)?;
/// assert_eq!(divide::xi_divide(big, 2)?, 79); // m·log_m(t) − 1 = 2·40 − 1
/// # Ok(())
/// # }
/// ```
pub fn xi_divide(shape: TreeShape, k: u64) -> Result<u64, TreeError> {
    let t = shape.leaves();
    if k > t {
        return Err(TreeError::TooManyActiveLeaves { k, t });
    }
    Ok(eval(shape, k))
}

fn eval(shape: TreeShape, k: u64) -> u64 {
    match k {
        0 => 1,
        1 => 0,
        _ => {
            if k.is_multiple_of(2) {
                even(shape, k / 2)
            } else {
                // Eq. 3: ξ_{2p+1} = ξ_{2p} − 1 (with ξ_0 − 1 handled by k=1 above).
                even(shape, k / 2) - 1
            }
        }
    }
}

/// `ξ_{2p}^t` for `p ≥ 1` via Eq. (2), recursing until the Eq. (4) base case.
fn even(shape: TreeShape, p: u64) -> u64 {
    let m = shape.branching();
    debug_assert!(p >= 1 && 2 * p <= shape.leaves());
    match shape.subtree() {
        None => {
            // Single level, t = m: Eq. 4.
            1 + m - 2 * p
        }
        Some(child) => {
            let tm = child.leaves(); // t/m
            let capped = p.min(tm);
            let mut sum: u64 = 1;
            for i in 0..m {
                let child_k = 2 * ((capped + i) / m);
                sum += eval(child, child_k);
            }
            let penalty = 2 * p.saturating_sub(tm);
            sum - penalty
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::SearchTimeTable;

    #[test]
    fn agrees_with_exact_dp() {
        for (m, n) in [(2u64, 1u32), (2, 3), (2, 6), (3, 1), (3, 3), (4, 3), (5, 2), (8, 2)] {
            let shape = TreeShape::new(m, n).unwrap();
            let table = SearchTimeTable::compute(shape).unwrap();
            for k in 0..=shape.leaves() {
                assert_eq!(
                    xi_divide(shape, k).unwrap(),
                    table.xi(k).unwrap(),
                    "m={m} n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn scales_to_deep_trees() {
        // ξ_2^t = m·log_m(t) − 1 even for trees with 2^40 leaves.
        let shape = TreeShape::new(2, 40).unwrap();
        assert_eq!(xi_divide(shape, 2).unwrap(), 79);
        // ξ_t^t needs k = t which overflows the argument space only at the
        // top; pick full activity on a 3^20 tree.
        let shape = TreeShape::new(3, 20).unwrap();
        let t = shape.leaves();
        assert_eq!(xi_divide(shape, t).unwrap(), (t - 1) / 2);
    }

    #[test]
    fn rejects_k_beyond_t() {
        let shape = TreeShape::new(2, 2).unwrap();
        assert_eq!(
            xi_divide(shape, 5),
            Err(TreeError::TooManyActiveLeaves { k: 5, t: 4 })
        );
    }

    #[test]
    fn base_cases() {
        let shape = TreeShape::new(7, 1).unwrap();
        assert_eq!(xi_divide(shape, 0).unwrap(), 1);
        assert_eq!(xi_divide(shape, 1).unwrap(), 0);
        assert_eq!(xi_divide(shape, 2).unwrap(), 6); // 1 + 7 − 2
        assert_eq!(xi_divide(shape, 3).unwrap(), 5);
    }
}
