//! Expected (average-case) search times over uniformly random leaf
//! subsets.
//!
//! The paper motivates tree protocols by their *efficiency*: "tree
//! protocols … achieve channel utilization ratios that are very close to
//! theoretical upper bounds" (§3.1, citing Gallager, Tsybakov,
//! Mathys–Flajolet). The worst case `ξ_k^t` drives the feasibility
//! conditions; the **expected** cost drives utilization. This module
//! computes it exactly: for `k` active leaves placed uniformly at random,
//! the active counts of the `m` subtrees are jointly hypergeometric, so
//!
//! ```text
//! A_t(k) = 1 + m · Σ_j  P_hyp(j; t/m, t, k) · A_{t/m}(j)    k ≥ 2
//! A_t(1) = 0,   A_t(0) = 1
//! ```
//!
//! where `P_hyp(j; s, t, k) = C(s,j)·C(t−s,k−j)/C(t,k)` — computed with a
//! stable ratio recurrence, level by level, in `O(t·k)` per level.

use crate::error::TreeError;
use crate::geometry::TreeShape;

/// Table of expected search slots `A_t(k)` for `k ∈ [0, t]`, where the `k`
/// active leaves are uniformly random.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectedSearchTable {
    shape: TreeShape,
    expected: Vec<f64>,
}

impl ExpectedSearchTable {
    /// Computes the expected-cost table bottom-up.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::Overflow`] for trees too large to tabulate
    /// (same cap as [`SearchTimeTable`]).
    pub fn compute(shape: TreeShape) -> Result<Self, TreeError> {
        // Reuse the exact table's size guard (via the process-wide cache:
        // the worst-case table for this shape is almost always wanted too).
        let _guard = crate::cache::global().worst_case(shape)?;
        let m = shape.branching();
        // ln(n!) table up to the full leaf count, for stable hypergeometric
        // probabilities.
        let lf = ln_factorials(shape.leaves() as usize);
        let ln_choose = |n: u64, r: u64| -> f64 {
            lf[n as usize] - lf[r as usize] - lf[(n - r) as usize]
        };
        // Level for a single leaf.
        let mut level: Vec<f64> = vec![1.0, 0.0];
        let mut sub_leaves = 1u64;
        for _ in 0..shape.height() {
            let t = sub_leaves * m;
            let s = sub_leaves;
            let mut next = vec![0.0f64; t as usize + 1];
            next[0] = 1.0;
            next[1] = 0.0;
            for k in 2..=t {
                // E[A_s(J)] with J ~ Hypergeometric(t, s, k):
                // P(j) = C(s, j)·C(t−s, k−j)/C(t, k) on the support
                // max(0, k − (t − s)) ≤ j ≤ min(k, s).
                let ln_denom = ln_choose(t, k);
                let j_min = k.saturating_sub(t - s);
                let j_max = k.min(s);
                let mut acc = 0.0f64;
                for j in j_min..=j_max {
                    let p =
                        (ln_choose(s, j) + ln_choose(t - s, k - j) - ln_denom).exp();
                    acc += p * level[j as usize];
                }
                next[k as usize] = 1.0 + m as f64 * acc;
            }
            level = next;
            sub_leaves = t;
        }
        Ok(ExpectedSearchTable {
            shape,
            expected: level,
        })
    }

    /// The shape this table was computed for.
    pub fn shape(&self) -> TreeShape {
        self.shape
    }

    /// Expected search slots for `k` uniformly random active leaves.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::TooManyActiveLeaves`] if `k > t`.
    pub fn expected(&self, k: u64) -> Result<f64, TreeError> {
        self.expected
            .get(k as usize)
            .copied()
            .ok_or(TreeError::TooManyActiveLeaves {
                k,
                t: self.shape.leaves(),
            })
    }

    /// Saturation channel efficiency for frames of `frame_slots` slot
    /// times: useful time over total time when `k` stations always
    /// contend, `k·frame / (k·frame + A_t(k))`.
    ///
    /// # Errors
    ///
    /// Propagates [`TreeError::TooManyActiveLeaves`].
    pub fn efficiency(&self, k: u64, frame_slots: f64) -> Result<f64, TreeError> {
        if k == 0 {
            return Ok(0.0);
        }
        let useful = k as f64 * frame_slots;
        Ok(useful / (useful + self.expected(k)?))
    }
}

/// `ln(n!)` for `n ∈ [0, max]`, by cumulative summation (exact enough for
/// the tree sizes the table cap admits).
fn ln_factorials(max: usize) -> Vec<f64> {
    let mut lf = vec![0.0f64; max + 1];
    for n in 1..=max {
        lf[n] = lf[n - 1] + (n as f64).ln();
    }
    lf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::SearchTimeTable;
    use crate::search::search_active_leaves;

    fn table(m: u64, n: u32) -> ExpectedSearchTable {
        ExpectedSearchTable::compute(TreeShape::new(m, n).unwrap()).unwrap()
    }

    #[test]
    fn base_cases() {
        let t = table(2, 3);
        assert_eq!(t.expected(0).unwrap(), 1.0);
        assert_eq!(t.expected(1).unwrap(), 0.0);
        assert!(t.expected(9).is_err());
    }

    #[test]
    fn two_leaves_on_two_leaf_tree() {
        // k = t = 2, m = 2: both children active: cost = 1 exactly.
        let t = table(2, 1);
        assert!((t.expected(2).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expected_never_exceeds_worst_case() {
        for (m, n) in [(2u64, 4u32), (3, 3), (4, 3)] {
            let shape = TreeShape::new(m, n).unwrap();
            let avg = ExpectedSearchTable::compute(shape).unwrap();
            let worst = SearchTimeTable::compute(shape).unwrap();
            for k in 0..=shape.leaves() {
                assert!(
                    avg.expected(k).unwrap() <= worst.xi(k).unwrap() as f64 + 1e-9,
                    "m={m} n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn exact_enumeration_cross_check() {
        // Average over ALL C(t, k) subsets on a small tree must equal the
        // analytic expectation.
        let shape = TreeShape::new(2, 3).unwrap();
        let avg = ExpectedSearchTable::compute(shape).unwrap();
        for k in 0..=8u64 {
            let mut subset: Vec<u64> = (0..k).collect();
            let mut total = 0.0f64;
            let mut count = 0u64;
            loop {
                total +=
                    search_active_leaves(shape, &subset).unwrap().search_slots() as f64;
                count += 1;
                if !next_comb(&mut subset, 8) {
                    break;
                }
            }
            let enumerated = total / count as f64;
            let analytic = avg.expected(k).unwrap();
            assert!(
                (enumerated - analytic).abs() < 1e-9,
                "k={k}: enumerated {enumerated} vs analytic {analytic}"
            );
        }
    }

    fn next_comb(subset: &mut [u64], t: u64) -> bool {
        let k = subset.len();
        let mut i = k;
        while i > 0 {
            i -= 1;
            if subset[i] < t - (k as u64 - i as u64) {
                subset[i] += 1;
                for j in i + 1..k {
                    subset[j] = subset[j - 1] + 1;
                }
                return true;
            }
        }
        false
    }

    #[test]
    fn efficiency_increases_with_frame_size() {
        let avg = table(4, 3);
        let small = avg.efficiency(8, 2.0).unwrap();
        let large = avg.efficiency(8, 24.0).unwrap();
        assert!(large > small);
        assert!(large < 1.0);
        assert_eq!(avg.efficiency(0, 10.0).unwrap(), 0.0);
    }

    #[test]
    fn average_is_well_below_worst_at_mid_k() {
        // The whole point of the average-case view: typical searches are
        // much cheaper than adversarial ones.
        let shape = TreeShape::new(4, 3).unwrap();
        let avg = ExpectedSearchTable::compute(shape).unwrap();
        let worst = SearchTimeTable::compute(shape).unwrap();
        let k = 32;
        assert!(avg.expected(k).unwrap() < 0.9 * worst.xi(k).unwrap() as f64);
    }
}
