//! Error type for tree-analysis operations.

use std::error::Error;
use std::fmt;

/// Error returned by fallible constructors and queries in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TreeError {
    /// The branching degree `m` must be at least 2.
    BranchingTooSmall {
        /// The offending branching degree.
        m: u64,
    },
    /// The leaf count `t` is not a positive power of the branching degree `m`.
    NotAPowerOfM {
        /// The offending leaf count.
        t: u64,
        /// The branching degree.
        m: u64,
    },
    /// The requested leaf count would overflow the supported range.
    Overflow {
        /// The branching degree.
        m: u64,
        /// The requested height.
        n: u32,
    },
    /// The number of active leaves `k` exceeds the number of leaves `t`.
    TooManyActiveLeaves {
        /// The offending active-leaf count.
        k: u64,
        /// The number of leaves.
        t: u64,
    },
    /// A leaf index is outside `[0, t)`.
    LeafOutOfRange {
        /// The offending leaf index.
        leaf: u64,
        /// The number of leaves.
        t: u64,
    },
    /// A multi-tree problem instance is infeasible (no valid composition of
    /// `u` into `v` parts, each within `[2, t]`).
    InfeasibleComposition {
        /// Total number of active leaves.
        u: u64,
        /// Number of consecutive trees.
        v: u64,
        /// Leaves per tree.
        t: u64,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TreeError::BranchingTooSmall { m } => {
                write!(f, "branching degree must be at least 2, got {m}")
            }
            TreeError::NotAPowerOfM { t, m } => {
                write!(f, "leaf count {t} is not a positive power of {m}")
            }
            TreeError::Overflow { m, n } => {
                write!(f, "leaf count {m}^{n} overflows the supported range")
            }
            TreeError::TooManyActiveLeaves { k, t } => {
                write!(f, "active leaf count {k} exceeds leaf count {t}")
            }
            TreeError::LeafOutOfRange { leaf, t } => {
                write!(f, "leaf index {leaf} is outside [0, {t})")
            }
            TreeError::InfeasibleComposition { u, v, t } => {
                write!(
                    f,
                    "cannot split {u} active leaves over {v} trees with parts in [2, {t}]"
                )
            }
        }
    }
}

impl Error for TreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = TreeError::BranchingTooSmall { m: 1 };
        let s = e.to_string();
        assert!(s.contains("branching degree"));
        assert!(s.contains('1'));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TreeError>();
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", TreeError::Overflow { m: 2, n: 64 }).is_empty());
    }

    #[test]
    fn all_variants_display() {
        let variants = [
            TreeError::BranchingTooSmall { m: 0 },
            TreeError::NotAPowerOfM { t: 6, m: 4 },
            TreeError::Overflow { m: 16, n: 60 },
            TreeError::TooManyActiveLeaves { k: 9, t: 8 },
            TreeError::LeafOutOfRange { leaf: 8, t: 8 },
            TreeError::InfeasibleComposition { u: 3, v: 2, t: 4 },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
