//! Ground-truth m-ary tree search over explicit active-leaf sets.
//!
//! [`search_active_leaves`] replays the deterministic depth-first
//! collision-resolution search described in section 3.2 ("Principles of
//! m-ary tree search m-ts") over a concrete set of active leaves, counting
//! collision slots and empty slots exactly as the paper's `ξ` accounting
//! does: *"Search times are expressed in numbers of tree nodes visited
//! (collision slots) or empty channel slots […]. Successful transmissions do
//! not contribute to search times."*
//!
//! [`worst_case_exhaustive`] then maximises that measured cost over **all**
//! `binomial(t, k)` leaf subsets, providing an independent oracle for the
//! recursive definition Eq. (1) — this is how the crate proves that the DP,
//! the divide-and-conquer recursion and the closed form all compute the same
//! quantity the search actually exhibits, and that the bound is *achievable*
//! (tight), not merely an upper bound.

use crate::error::TreeError;
use crate::geometry::TreeShape;

/// What the channel reports for one probe of a subtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeOutcome {
    /// No active leaf in the probed subtree: one empty channel slot.
    Empty,
    /// Exactly one active leaf: a successful transmission (free).
    Success {
        /// The isolated leaf.
        leaf: u64,
    },
    /// Two or more active leaves: a collision slot; the search splits.
    Collision,
}

/// One probe of the deterministic search: the subtree interval examined and
/// the channel outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Probe {
    /// First leaf of the probed subtree.
    pub lo: u64,
    /// Number of leaves of the probed subtree.
    pub width: u64,
    /// Channel outcome of the probe.
    pub outcome: ProbeOutcome,
}

/// Complete outcome of a deterministic tree search over a known leaf set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchOutcome {
    /// Number of collision slots (tree nodes visited with ≥2 active leaves).
    pub collision_slots: u64,
    /// Number of empty channel slots (subtrees with no active leaf).
    pub empty_slots: u64,
    /// Leaves isolated, in transmission order (left to right).
    pub transmissions: Vec<u64>,
    /// The full probe sequence, in channel order.
    pub probes: Vec<Probe>,
}

impl SearchOutcome {
    /// Total search time in slots: `collision_slots + empty_slots`
    /// (successes are free), i.e. the quantity bounded by `ξ_k^t`.
    pub fn search_slots(&self) -> u64 {
        self.collision_slots + self.empty_slots
    }
}

/// Replays the deterministic m-ary search over the given active leaves and
/// returns exact slot accounting plus the probe trace.
///
/// The search starts at the root: with `k ≥ 2` the root itself is a
/// collision slot (in the protocol this is the collision that triggered the
/// resolution), with `k == 1` the lone message goes through free, and with
/// `k == 0` one empty slot is heard — exactly the base cases of Eq. (1).
///
/// # Errors
///
/// Returns [`TreeError::LeafOutOfRange`] if any leaf index is `≥ t`.
/// Duplicate leaf indices are tolerated (a set is formed internally).
///
/// # Examples
///
/// ```
/// use ddcr_tree::{search, TreeShape};
///
/// # fn main() -> Result<(), ddcr_tree::TreeError> {
/// let shape = TreeShape::new(2, 2)?; // 4 leaves
/// let out = search::search_active_leaves(shape, &[0, 1])?;
/// assert_eq!(out.transmissions, vec![0, 1]);
/// // Root collision, left-subtree collision, then two free successes and
/// // one empty probe of the right subtree: ξ_2^4 = 3 slots, achieved.
/// assert_eq!(out.search_slots(), 3);
/// # Ok(())
/// # }
/// ```
pub fn search_active_leaves(
    shape: TreeShape,
    active: &[u64],
) -> Result<SearchOutcome, TreeError> {
    let t = shape.leaves();
    for &leaf in active {
        if leaf >= t {
            return Err(TreeError::LeafOutOfRange { leaf, t });
        }
    }
    let mut sorted: Vec<u64> = active.to_vec();
    sorted.sort_unstable();
    sorted.dedup();

    let mut out = SearchOutcome {
        collision_slots: 0,
        empty_slots: 0,
        transmissions: Vec::with_capacity(sorted.len()),
        probes: Vec::new(),
    };
    visit(shape.branching(), 0, t, &sorted, &mut out);
    Ok(out)
}

/// Depth-first visit of the subtree holding leaves `[lo, lo+width)`.
fn visit(m: u64, lo: u64, width: u64, sorted: &[u64], out: &mut SearchOutcome) {
    let begin = sorted.partition_point(|&x| x < lo);
    let end = sorted.partition_point(|&x| x < lo + width);
    let count = (end - begin) as u64;
    match count {
        0 => {
            out.empty_slots += 1;
            out.probes.push(Probe {
                lo,
                width,
                outcome: ProbeOutcome::Empty,
            });
        }
        1 => {
            let leaf = sorted[begin];
            out.transmissions.push(leaf);
            out.probes.push(Probe {
                lo,
                width,
                outcome: ProbeOutcome::Success { leaf },
            });
        }
        _ => {
            out.collision_slots += 1;
            out.probes.push(Probe {
                lo,
                width,
                outcome: ProbeOutcome::Collision,
            });
            let child = width / m;
            debug_assert!(child >= 1, "collision on a single leaf set of distinct leaves");
            for i in 0..m {
                visit(m, lo + i * child, child, sorted, out);
            }
        }
    }
}

/// Exhaustively maximises the measured search time over every `k`-subset of
/// leaves, returning the worst cost and one witness subset.
///
/// This is `O(binomial(t, k))` searches — use small trees (the tests use
/// `t ≤ 27`). The returned cost equals `ξ_k^t` (tightness of Eq. 1).
///
/// # Errors
///
/// Returns [`TreeError::TooManyActiveLeaves`] if `k > t`.
pub fn worst_case_exhaustive(
    shape: TreeShape,
    k: u64,
) -> Result<(u64, Vec<u64>), TreeError> {
    let t = shape.leaves();
    if k > t {
        return Err(TreeError::TooManyActiveLeaves { k, t });
    }
    if k == 0 {
        return Ok((1, vec![]));
    }
    let mut best = 0u64;
    let mut witness = Vec::new();
    let mut subset: Vec<u64> = (0..k).collect();
    loop {
        let outcome = search_active_leaves(shape, &subset)?;
        let cost = outcome.search_slots();
        if cost > best || witness.is_empty() {
            best = cost;
            witness = subset.clone();
        }
        if !next_combination(&mut subset, t) {
            break;
        }
    }
    Ok((best, witness))
}

/// Advances `subset` to the next k-combination of `[0, t)` in lexicographic
/// order; returns `false` when exhausted.
fn next_combination(subset: &mut [u64], t: u64) -> bool {
    let k = subset.len();
    let mut i = k;
    while i > 0 {
        i -= 1;
        if subset[i] < t - (k as u64 - i as u64) {
            subset[i] += 1;
            for j in i + 1..k {
                subset[j] = subset[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form::xi_closed;
    use crate::exact::SearchTimeTable;

    #[test]
    fn empty_set_costs_one_slot() {
        let shape = TreeShape::new(2, 3).unwrap();
        let out = search_active_leaves(shape, &[]).unwrap();
        assert_eq!(out.search_slots(), 1);
        assert_eq!(out.empty_slots, 1);
        assert!(out.transmissions.is_empty());
    }

    #[test]
    fn singleton_transmits_free() {
        let shape = TreeShape::new(2, 3).unwrap();
        for leaf in 0..8 {
            let out = search_active_leaves(shape, &[leaf]).unwrap();
            assert_eq!(out.search_slots(), 0);
            assert_eq!(out.transmissions, vec![leaf]);
        }
    }

    #[test]
    fn transmissions_left_to_right() {
        let shape = TreeShape::new(2, 3).unwrap();
        let out = search_active_leaves(shape, &[6, 1, 4]).unwrap();
        assert_eq!(out.transmissions, vec![1, 4, 6]);
    }

    #[test]
    fn duplicates_are_deduplicated() {
        let shape = TreeShape::new(2, 2).unwrap();
        let a = search_active_leaves(shape, &[1, 1, 3]).unwrap();
        let b = search_active_leaves(shape, &[1, 3]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn out_of_range_leaf_rejected() {
        let shape = TreeShape::new(2, 2).unwrap();
        assert_eq!(
            search_active_leaves(shape, &[4]),
            Err(TreeError::LeafOutOfRange { leaf: 4, t: 4 })
        );
    }

    #[test]
    fn measured_cost_never_exceeds_xi() {
        // Random-ish structured subsets on a 16-leaf binary tree.
        let shape = TreeShape::new(2, 4).unwrap();
        let table = SearchTimeTable::compute(shape).unwrap();
        let subsets: Vec<Vec<u64>> = vec![
            vec![0, 15],
            vec![0, 1, 2, 3],
            vec![0, 4, 8, 12],
            vec![5, 6, 7, 8, 9],
            (0..16).collect(),
        ];
        for s in subsets {
            let out = search_active_leaves(shape, &s).unwrap();
            assert!(out.search_slots() <= table.xi(s.len() as u64).unwrap());
        }
    }

    #[test]
    fn exhaustive_worst_case_equals_xi_binary_8() {
        let shape = TreeShape::new(2, 3).unwrap();
        for k in 0..=8u64 {
            let (worst, witness) = worst_case_exhaustive(shape, k).unwrap();
            assert_eq!(worst, xi_closed(shape, k).unwrap(), "k={k}");
            if k > 0 {
                assert_eq!(witness.len() as u64, k);
            }
        }
    }

    #[test]
    fn exhaustive_worst_case_equals_xi_ternary_9() {
        let shape = TreeShape::new(3, 2).unwrap();
        for k in 0..=9u64 {
            let (worst, _) = worst_case_exhaustive(shape, k).unwrap();
            assert_eq!(worst, xi_closed(shape, k).unwrap(), "k={k}");
        }
    }

    #[test]
    fn exhaustive_worst_case_equals_xi_quaternary_16() {
        let shape = TreeShape::new(4, 2).unwrap();
        for k in 0..=16u64 {
            let (worst, _) = worst_case_exhaustive(shape, k).unwrap();
            assert_eq!(worst, xi_closed(shape, k).unwrap(), "k={k}");
        }
    }

    #[test]
    fn witness_reproduces_worst_cost() {
        let shape = TreeShape::new(2, 4).unwrap();
        let (worst, witness) = worst_case_exhaustive(shape, 5).unwrap();
        let replay = search_active_leaves(shape, &witness).unwrap();
        assert_eq!(replay.search_slots(), worst);
    }

    #[test]
    fn probe_trace_accounts_for_every_slot() {
        let shape = TreeShape::new(2, 3).unwrap();
        let out = search_active_leaves(shape, &[0, 1, 5]).unwrap();
        let collisions = out
            .probes
            .iter()
            .filter(|p| p.outcome == ProbeOutcome::Collision)
            .count() as u64;
        let empties = out
            .probes
            .iter()
            .filter(|p| p.outcome == ProbeOutcome::Empty)
            .count() as u64;
        assert_eq!(collisions, out.collision_slots);
        assert_eq!(empties, out.empty_slots);
    }

    #[test]
    fn combination_iterator_is_exhaustive() {
        let mut subset = vec![0u64, 1, 2];
        let mut count = 1;
        while next_combination(&mut subset, 5) {
            count += 1;
        }
        assert_eq!(count, 10); // C(5,3)
    }
}
