//! Problem P2 — worst-case searches over multiple consecutive trees
//! (Eq. 16–19 of the paper).
//!
//! P2 asks for a computable tight upper bound on
//!
//! ```text
//! max { ξ_{k_1}^t + … + ξ_{k_v}^t }   s.t.  k_1 + … + k_v = u,  k_i ∈ [2, t]
//! ```
//!
//! (Eq. 16), i.e. the worst way `u` messages can spread over `v` consecutive
//! `t`-leaf trees. The paper proves (Eq. 18), using the concavity of `ξ̃`:
//!
//! ```text
//! max Σ ξ̃_{k_i}^t = v·ξ̃_{u/v}^t = ξ̃_u^{tv} − (v−1)/(m−1)
//! ```
//!
//! so `ξ̃_u^{tv} − (v−1)/(m−1)` upper-bounds the exact optimum (Eq. 19).
//! This module provides both the asymptotic solution and an exact
//! dynamic-programming optimum of Eq. (16) so the bound's tightness can be
//! measured (experiment E5).

use crate::asymptotic::xi_tilde;
use crate::error::TreeError;
use crate::geometry::TreeShape;

/// A multi-tree problem instance: `u` active leaves (messages) spread over
/// `v` consecutive `t`-leaf balanced m-ary trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MultiTreeProblem {
    /// Shape of each of the `v` trees.
    pub shape: TreeShape,
    /// Total number of active leaves across all trees.
    pub u: u64,
    /// Number of consecutive trees.
    pub v: u64,
}

impl MultiTreeProblem {
    /// Creates an instance, validating that a composition of `u` into `v`
    /// parts within `[2, t]` exists.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::InfeasibleComposition`] unless
    /// `2v ≤ u ≤ t·v` and `v ≥ 1`.
    pub fn new(shape: TreeShape, u: u64, v: u64) -> Result<Self, TreeError> {
        let t = shape.leaves();
        if v == 0 || u < 2 * v || u > t * v {
            return Err(TreeError::InfeasibleComposition { u, v, t });
        }
        Ok(MultiTreeProblem { shape, u, v })
    }

    /// The paper's asymptotic solution to P2 (Eq. 18–19):
    /// `v·ξ̃_{u/v}^t`, equivalently `ξ̃_u^{tv} − (v−1)/(m−1)`.
    pub fn bound(&self) -> f64 {
        self.v as f64 * xi_tilde(self.shape, self.u as f64 / self.v as f64)
    }

    /// [`MultiTreeProblem::bound`] routed through the process-wide
    /// memoized table cache ([`crate::cache::global`]): repeated lookups
    /// of the same instance (feasibility sweeps evaluate thousands) cost a
    /// map probe instead of the closed form, and cache hit/miss counters
    /// make the traffic observable.
    pub fn bound_cached(&self) -> f64 {
        crate::cache::global().multi_bound(*self)
    }

    /// [`MultiTreeProblem::exact_optimum`] routed through the process-wide
    /// memoized table cache — the `O(v·u·t)` dynamic program runs at most
    /// once per instance per process.
    ///
    /// # Errors
    ///
    /// Propagates table-construction errors from [`crate::exact`].
    pub fn exact_optimum_cached(&self) -> Result<std::sync::Arc<ExactOptimum>, TreeError> {
        crate::cache::global().multi_exact(*self)
    }

    /// The equivalent single-big-tree form of the bound,
    /// `ξ̃_u^{tv} − (v−1)/(m−1)` — mathematically identical to
    /// [`MultiTreeProblem::bound`] (Eq. 18; the identity is property-tested).
    pub fn bound_big_tree_form(&self) -> f64 {
        let m = self.shape.branching() as f64;
        let t = self.shape.leaves() as f64;
        let u = self.u as f64;
        let v = self.v as f64;
        // ξ̃_u^{tv} evaluated directly from Eq. 11 with leaf count t·v
        // (t·v need not be a power of m; Eq. 11 is a real function of t).
        let half = m * u / 2.0;
        let tilde_big = (half - 1.0) / (m - 1.0) + half * (2.0 * t * v / u).ln() / m.ln() - u;
        tilde_big - (v - 1.0) / (m - 1.0)
    }

    /// The exact optimum of Eq. (16) via dynamic programming over
    /// compositions, with one witness composition.
    ///
    /// Runs in `O(v · u · t)`; intended for moderate instances (E5 uses
    /// `t ≤ 256`, `v ≤ 16`).
    ///
    /// # Errors
    ///
    /// Propagates table-construction errors from [`crate::exact`].
    pub fn exact_optimum(&self) -> Result<ExactOptimum, TreeError> {
        let table = crate::cache::global().worst_case(self.shape)?;
        let t = self.shape.leaves();
        let u = self.u as usize;
        let v = self.v as usize;
        const NEG: i64 = i64::MIN / 4;
        // dp[x] = best total for the prefix of parts placed so far summing to x.
        let mut dp = vec![NEG; u + 1];
        let mut choice = vec![vec![0u64; u + 1]; v];
        dp[0] = 0;
        for (j, choice_j) in choice.iter_mut().enumerate() {
            let mut next = vec![NEG; u + 1];
            #[allow(clippy::needless_range_loop)] // dp[x] read and indexed from nx
            for x in 0..=u {
                if dp[x] == NEG {
                    continue;
                }
                let kmax = t.min((u - x) as u64);
                for k in 2..=kmax {
                    let cand = dp[x] + table.xi(k)? as i64;
                    let nx = x + k as usize;
                    if cand > next[nx] {
                        next[nx] = cand;
                        choice_j[nx] = k;
                    }
                }
            }
            dp = next;
            let _ = j;
        }
        if dp[u] == NEG {
            return Err(TreeError::InfeasibleComposition {
                u: self.u,
                v: self.v,
                t,
            });
        }
        // Reconstruct the witness composition.
        let mut parts = Vec::with_capacity(v);
        let mut x = u;
        for j in (0..v).rev() {
            let k = choice[j][x];
            parts.push(k);
            x -= k as usize;
        }
        parts.reverse();
        Ok(ExactOptimum {
            total: dp[u] as u64,
            parts,
        })
    }
}

/// Exact optimum of the multi-tree problem with a witness composition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactOptimum {
    /// `max Σ ξ_{k_i}^t`.
    pub total: u64,
    /// A composition `(k_1, …, k_v)` attaining the maximum.
    pub parts: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::SearchTimeTable;

    fn problem(m: u64, n: u32, u: u64, v: u64) -> MultiTreeProblem {
        MultiTreeProblem::new(TreeShape::new(m, n).unwrap(), u, v).unwrap()
    }

    #[test]
    fn validates_composition_feasibility() {
        let shape = TreeShape::new(2, 3).unwrap();
        assert!(MultiTreeProblem::new(shape, 3, 2).is_err()); // u < 2v
        assert!(MultiTreeProblem::new(shape, 17, 2).is_err()); // u > t·v
        assert!(MultiTreeProblem::new(shape, 4, 0).is_err());
        assert!(MultiTreeProblem::new(shape, 4, 2).is_ok());
    }

    #[test]
    fn eq18_identity_two_forms_agree() {
        for (m, n, u, v) in [
            (2u64, 4u32, 10u64, 3u64),
            (4, 3, 40, 5),
            (3, 3, 13, 4),
            (2, 6, 100, 2),
        ] {
            let p = problem(m, n, u, v);
            let a = p.bound();
            let b = p.bound_big_tree_form();
            assert!((a - b).abs() < 1e-9 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn eq19_bound_dominates_exact_optimum() {
        for (m, n, u, v) in [
            (2u64, 4u32, 10u64, 3u64),
            (2, 4, 20, 4),
            (4, 2, 20, 3),
            (3, 3, 30, 5),
            (4, 3, 64, 2),
        ] {
            let p = problem(m, n, u, v);
            let exact = p.exact_optimum().unwrap();
            assert!(
                p.bound() + 1e-9 >= exact.total as f64,
                "m={m} n={n} u={u} v={v}: bound {} < exact {}",
                p.bound(),
                exact.total
            );
        }
    }

    #[test]
    fn exact_witness_is_valid_and_attains_total() {
        let p = problem(2, 4, 14, 3);
        let table = SearchTimeTable::compute(p.shape).unwrap();
        let opt = p.exact_optimum().unwrap();
        assert_eq!(opt.parts.len() as u64, p.v);
        assert_eq!(opt.parts.iter().sum::<u64>(), p.u);
        for &k in &opt.parts {
            assert!((2..=p.shape.leaves()).contains(&k));
        }
        let total: u64 = opt.parts.iter().map(|&k| table.xi(k).unwrap()).sum();
        assert_eq!(total, opt.total);
    }

    #[test]
    fn cached_lookups_match_direct_computation() {
        let p = problem(2, 4, 10, 3);
        assert_eq!(p.bound_cached().to_bits(), p.bound().to_bits());
        assert_eq!(p.bound_cached().to_bits(), p.bound().to_bits(), "hit path");
        assert_eq!(*p.exact_optimum_cached().unwrap(), p.exact_optimum().unwrap());
    }

    #[test]
    fn single_tree_reduces_to_xi() {
        let shape = TreeShape::new(4, 3).unwrap();
        let table = SearchTimeTable::compute(shape).unwrap();
        for u in 2..=64u64 {
            let p = MultiTreeProblem::new(shape, u, 1).unwrap();
            assert_eq!(p.exact_optimum().unwrap().total, table.xi(u).unwrap());
        }
    }

    #[test]
    fn balanced_split_is_worst_for_anchor_points() {
        // At u/v = 2·m^i the asymptotic is exact, so the DP optimum should
        // equal v·ξ at the balanced split.
        let shape = TreeShape::new(2, 4).unwrap();
        let table = SearchTimeTable::compute(shape).unwrap();
        for (u, v) in [(8u64, 4u64), (16, 4), (8, 2)] {
            let p = MultiTreeProblem::new(shape, u, v).unwrap();
            let balanced = v * table.xi(u / v).unwrap();
            assert_eq!(p.exact_optimum().unwrap().total, balanced, "u={u} v={v}");
        }
    }
}
