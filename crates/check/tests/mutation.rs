//! Mutation tests: the checker is only trustworthy if it *fails* on broken
//! protocols. Each test wires a deliberately faulty station into an
//! otherwise conforming network and asserts the corresponding property
//! violation is detected — so a future refactor that silently weakens a
//! check will trip here.

use ddcr_core::{DdcrConfig, DdcrStation, StaticAllocation};
use ddcr_sim::{
    Action, ClassId, Frame, MediumConfig, Message, MessageId, Observation, SourceId, Station,
    Ticks,
};

const SLOT: u64 = 512;

/// How a mutant misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    /// Drops every k-th channel observation (desynchronising its replica).
    DropObservations(u64),
    /// Never transmits, silently discarding its queue head after a while
    /// (kills liveness for its own messages without touching the channel).
    Mute,
}

/// A conforming station wrapped with an injected fault.
struct Mutant {
    inner: DdcrStation,
    fault: Fault,
    observed: u64,
    swallowed: usize,
}

impl Mutant {
    fn new(inner: DdcrStation, fault: Fault) -> Self {
        Mutant {
            inner,
            fault,
            observed: 0,
            swallowed: 0,
        }
    }
}

impl Station for Mutant {
    fn deliver(&mut self, message: Message) {
        match self.fault {
            Fault::Mute => self.swallowed += 1, // message silently vanishes
            _ => self.inner.deliver(message),
        }
    }

    fn poll(&mut self, now: Ticks) -> Action {
        match self.fault {
            Fault::Mute => Action::Idle,
            _ => self.inner.poll(now),
        }
    }

    fn observe(&mut self, now: Ticks, next_free: Ticks, observation: &Observation) {
        self.observed += 1;
        if let Fault::DropObservations(k) = self.fault {
            if self.observed.is_multiple_of(k) {
                return; // replica misses one slot of feedback
            }
        }
        self.inner.observe(now, next_free, observation);
    }

    fn backlog(&self) -> usize {
        match self.fault {
            Fault::Mute => self.swallowed,
            _ => self.inner.backlog(),
        }
    }
}

/// Drives a network of (possibly mutated) stations and reports whether the
/// replicas of the *conforming* stations plus the mutant's inner replica
/// ever diverge, and whether the workload drains.
fn drive(stations: &mut [Mutant], arrivals: Vec<Message>, budget: u64) -> (bool, bool) {
    let mut arrivals = arrivals;
    arrivals.sort_by_key(|m| (m.arrival, m.id));
    let mut now = Ticks::ZERO;
    let mut next = 0usize;
    let mut diverged = false;
    for _ in 0..budget {
        while next < arrivals.len() && arrivals[next].arrival <= now {
            let m = arrivals[next];
            stations[m.source.0 as usize].deliver(m);
            next += 1;
        }
        let frames: Vec<Frame> = stations
            .iter_mut()
            .filter_map(|s| match s.poll(now) {
                Action::Transmit(f) => Some(f),
                Action::Idle => None,
            })
            .collect();
        let (obs, advance) = match frames.len() {
            0 => (Observation::Silence, Ticks(SLOT)),
            1 => (Observation::Busy(frames[0]), frames[0].duration()),
            _ => (Observation::Collision { survivor: None }, Ticks(SLOT)),
        };
        let next_free = now + advance;
        for s in stations.iter_mut() {
            s.observe(now, next_free, &obs);
        }
        let digests: Vec<String> = stations
            .iter()
            .map(|s| s.inner.shared_state_digest())
            .collect();
        if digests[1..].iter().any(|d| d != &digests[0]) {
            diverged = true;
        }
        now = next_free;
        if next == arrivals.len() && stations.iter().all(|s| s.backlog() == 0) {
            return (diverged, true);
        }
    }
    (diverged, false)
}

fn network(z: u32, faults: &[(usize, Fault)]) -> Vec<Mutant> {
    let medium = MediumConfig::ethernet();
    let config = DdcrConfig::for_sources(z, Ticks(100_000)).unwrap();
    let allocation = StaticAllocation::one_per_source(config.static_tree, z).unwrap();
    (0..z)
        .map(|i| {
            let inner = DdcrStation::new(
                SourceId(i),
                config,
                allocation.clone(),
                medium.overhead_bits,
            )
            .unwrap();
            let fault = faults
                .iter()
                .find(|(idx, _)| *idx == i as usize)
                .map(|(_, f)| *f);
            match fault {
                Some(f) => Mutant::new(inner, f),
                None => Mutant::new(inner, Fault::DropObservations(u64::MAX)),
            }
        })
        .collect()
}

fn burst(z: u32) -> Vec<Message> {
    (0..z)
        .map(|i| Message {
            id: MessageId(u64::from(i)),
            source: SourceId(i),
            class: ClassId(0),
            bits: 8_000,
            arrival: Ticks(0),
            deadline: Ticks(2_000_000),
        })
        .collect()
}

#[test]
fn conforming_network_is_clean() {
    let mut stations = network(3, &[]);
    let (diverged, drained) = drive(&mut stations, burst(3), 5_000);
    assert!(!diverged, "clean network must not diverge");
    assert!(drained, "clean network must drain");
}

#[test]
fn dropped_observations_are_detected_as_divergence() {
    // Station 1 loses every 3rd observation: its replica must fall out of
    // step with the others — and the divergence check must see it.
    let mut stations = network(3, &[(1, Fault::DropObservations(3))]);
    let (diverged, _) = drive(&mut stations, burst(3), 5_000);
    assert!(diverged, "a desynchronised replica must be detected");
}

#[test]
fn mute_station_is_detected_as_liveness_failure() {
    let mut stations = network(3, &[(2, Fault::Mute)]);
    let (_, drained) = drive(&mut stations, burst(3), 5_000);
    assert!(!drained, "a swallowed message must show up as undrained backlog");
}
