//! Scopes: the finite universes of scenarios the checker enumerates.
//!
//! Small-scope checking rests on the *small scope hypothesis*: most
//! protocol bugs are exposed by some small counterexample. A [`Scope`]
//! fixes the number of stations and finite choice sets for every message
//! attribute; [`Scope::scenarios`] then enumerates the **complete**
//! cartesian product of assignments — every placement of every message —
//! so a clean run is an exhaustive proof over that universe.

use ddcr_sim::{ClassId, Message, MessageId, SourceId, Ticks};

/// A finite scenario universe.
#[derive(Debug, Clone)]
pub struct Scope {
    /// Number of stations.
    pub stations: u32,
    /// Number of messages in every scenario.
    pub messages: usize,
    /// Choices for each message's arrival time (ticks).
    pub arrival_choices: Vec<u64>,
    /// Choices for each message's relative deadline (ticks).
    pub deadline_choices: Vec<u64>,
    /// Choices for each message's Data-Link length (bits).
    pub bits_choices: Vec<u64>,
}

impl Scope {
    /// A small default scope: 2 stations × 2 messages with arrivals in
    /// {0, 700, 40 000}, deadlines in {400 µs, 1.6 ms}, one frame size —
    /// 144 scenarios (12 per-message choices squared), exhaustively
    /// enumerable in milliseconds and including strict-EDF-qualifying
    /// cases (simultaneous arrivals at distinct sources).
    pub fn small() -> Self {
        Scope {
            stations: 2,
            messages: 2,
            arrival_choices: vec![0, 700, 40_000],
            deadline_choices: vec![400_000, 1_600_000],
            bits_choices: vec![2_000],
        }
    }

    /// A wider scope: 3 stations × 3 messages, two frame sizes, three
    /// deadlines (≈ 5.8 million slot-steps total; still seconds).
    pub fn medium() -> Self {
        Scope {
            stations: 3,
            messages: 3,
            arrival_choices: vec![0, 700, 40_000],
            deadline_choices: vec![400_000, 900_000, 1_600_000],
            bits_choices: vec![1_000, 8_000],
        }
    }

    /// Number of per-message assignments.
    fn per_message(&self) -> usize {
        self.stations as usize
            * self.arrival_choices.len()
            * self.deadline_choices.len()
            * self.bits_choices.len()
    }

    /// Total number of scenarios in the universe.
    pub fn scenario_count(&self) -> usize {
        self.per_message().pow(self.messages as u32)
    }

    /// Decodes scenario `index ∈ [0, scenario_count)` into its message
    /// list. Enumeration order is stable, so a violation's index is a
    /// replayable witness.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn scenario(&self, index: usize) -> Vec<Message> {
        assert!(index < self.scenario_count(), "scenario index out of range");
        let per = self.per_message();
        let mut rest = index;
        (0..self.messages)
            .map(|i| {
                let mut code = rest % per;
                rest /= per;
                let source = code % self.stations as usize;
                code /= self.stations as usize;
                let arrival = self.arrival_choices[code % self.arrival_choices.len()];
                code /= self.arrival_choices.len();
                let deadline = self.deadline_choices[code % self.deadline_choices.len()];
                code /= self.deadline_choices.len();
                let bits = self.bits_choices[code];
                Message {
                    id: MessageId(i as u64),
                    source: SourceId(source as u32),
                    class: ClassId(0),
                    bits,
                    arrival: Ticks(arrival),
                    deadline: Ticks(deadline),
                }
            })
            .collect()
    }

    /// Iterates over every scenario in the universe.
    pub fn scenarios(&self) -> impl Iterator<Item = Vec<Message>> + '_ {
        (0..self.scenario_count()).map(|i| self.scenario(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scope_counts() {
        let scope = Scope::small();
        // per message: 2 stations × 3 arrivals × 2 deadlines × 1 size = 12
        assert_eq!(scope.scenario_count(), 12usize.pow(2));
    }

    #[test]
    fn scenario_decoding_is_stable_and_total() {
        let scope = Scope::small();
        let a = scope.scenario(123);
        let b = scope.scenario(123);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        // Every index decodes without panicking and ids are positional.
        for (i, scenario) in scope.scenarios().enumerate().step_by(7) {
            assert_eq!(scenario.len(), 2, "index {i}");
            for (j, m) in scenario.iter().enumerate() {
                assert_eq!(m.id.0, j as u64);
            }
        }
    }

    #[test]
    fn enumeration_covers_distinct_scenarios() {
        let scope = Scope {
            stations: 2,
            messages: 2,
            arrival_choices: vec![0, 100],
            deadline_choices: vec![1_000],
            bits_choices: vec![500],
        };
        let mut seen = std::collections::HashSet::new();
        for s in scope.scenarios() {
            let key: Vec<(u32, u64)> =
                s.iter().map(|m| (m.source.0, m.arrival.as_u64())).collect();
            seen.insert(key);
        }
        // 4 per-message choices, 2 messages → 16 distinct scenarios.
        assert_eq!(seen.len(), 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let scope = Scope::small();
        let _ = scope.scenario(scope.scenario_count());
    }
}
