//! The bounded model checker: drives CSMA/DDCR replicas through every
//! scenario in a [`Scope`](crate::Scope) and checks the correctness
//! properties the paper claims.
//!
//! Checked invariants, per scenario:
//!
//! * **Liveness** — every message is delivered within the slot budget;
//! * **Exactly-once** — no duplicate or invented deliveries;
//! * **Replica consistency** — all stations' shared-state digests agree
//!   after every slot (the protocol is a replicated deterministic
//!   automaton);
//! * **Causality** — no delivery completes before `arrival + wire time`;
//! * **EDF emulation** — when all messages arrive simultaneously from
//!   distinct sources with absolute deadlines separated by at least two
//!   deadline classes, delivery order is exactly EDF order.

use crate::scope::Scope;
use ddcr_core::{DdcrConfig, DdcrStation, StaticAllocation};
use ddcr_sim::{Action, Frame, MediumConfig, Message, MessageId, Observation, Station, Ticks};

/// A property violated by a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Not every message was delivered within the slot budget.
    NotDrained {
        /// Messages still queued.
        backlog: usize,
    },
    /// A message was delivered more than once, or a delivery appeared for
    /// a message never scheduled.
    DuplicateOrInvented {
        /// The offending message.
        id: MessageId,
    },
    /// Two replicas disagreed on shared protocol state.
    ReplicaDivergence {
        /// Slot ordinal of the divergence.
        step: u64,
    },
    /// A delivery completed before it physically could.
    CausalityViolation {
        /// The offending message.
        id: MessageId,
    },
    /// Deliveries were not in EDF order although the scenario qualifies
    /// for strict EDF emulation.
    EdfOrderViolation {
        /// Delivered order (message ids).
        got: Vec<u64>,
        /// EDF order (message ids).
        expected: Vec<u64>,
    },
}

/// One scenario's verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Index into the scope's enumeration (replay with
    /// [`Scope::scenario`]).
    pub scenario_index: usize,
    /// The violated property.
    pub violation: Violation,
}

/// Aggregate result of checking a whole scope.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Scenarios enumerated.
    pub scenarios: usize,
    /// Scenarios that qualified for (and passed) the strict-EDF check.
    pub edf_checked: usize,
    /// All violations found, in enumeration order.
    pub findings: Vec<Finding>,
}

impl CheckReport {
    /// Whether the scope verified cleanly.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// The checker's protocol parameters (kept small so searches stay short).
fn config(z: u32) -> (DdcrConfig, StaticAllocation, MediumConfig) {
    let medium = MediumConfig::ethernet();
    let config = DdcrConfig::for_sources(z, Ticks(100_000)).expect("checker config");
    let allocation =
        StaticAllocation::one_per_source(config.static_tree, z).expect("checker allocation");
    (config, allocation, medium)
}

/// Exhaustively checks every scenario in the scope.
///
/// `slot_budget` bounds each scenario's length (a conforming network
/// drains the small scopes within a few hundred slots; the budget exists
/// to convert a liveness bug into a finding rather than a hang).
pub fn check_scope(scope: &Scope, slot_budget: u64) -> CheckReport {
    let mut report = CheckReport::default();
    for (index, scenario) in scope.scenarios().enumerate() {
        report.scenarios += 1;
        check_scenario(scope.stations, index, &scenario, slot_budget, &mut report);
    }
    report
}

/// Checks a single scenario (public so findings can be replayed and
/// minimised by hand).
pub fn check_scenario(
    z: u32,
    index: usize,
    scenario: &[Message],
    slot_budget: u64,
    report: &mut CheckReport,
) {
    let (config, allocation, medium) = config(z);
    let mut stations: Vec<DdcrStation> = (0..z)
        .map(|i| {
            DdcrStation::new(
                ddcr_sim::SourceId(i),
                config,
                allocation.clone(),
                medium.overhead_bits,
            )
            .expect("station")
        })
        .collect();
    let mut arrivals = scenario.to_vec();
    arrivals.sort_by_key(|m| (m.arrival, m.id));

    let mut deliveries: Vec<(MessageId, Ticks)> = Vec::new();
    let mut now = Ticks::ZERO;
    let mut next = 0usize;
    let mut step = 0u64;
    let mut diverged = false;
    while next < arrivals.len() || stations.iter().any(|s| s.backlog() > 0) {
        if step >= slot_budget {
            report.findings.push(Finding {
                scenario_index: index,
                violation: Violation::NotDrained {
                    backlog: stations.iter().map(|s| s.backlog()).sum(),
                },
            });
            return;
        }
        step += 1;
        while next < arrivals.len() && arrivals[next].arrival <= now {
            let m = arrivals[next];
            stations[m.source.0 as usize].deliver(m);
            next += 1;
        }
        let frames: Vec<Frame> = stations
            .iter_mut()
            .filter_map(|s| match s.poll(now) {
                Action::Transmit(f) => Some(f),
                Action::Idle => None,
            })
            .collect();
        let (obs, advance) = match frames.len() {
            0 => (Observation::Silence, Ticks(medium.slot_ticks)),
            1 => (Observation::Busy(frames[0]), frames[0].duration()),
            _ => (
                Observation::Collision { survivor: None },
                Ticks(medium.slot_ticks),
            ),
        };
        let next_free = now + advance;
        if let Observation::Busy(f) = obs {
            deliveries.push((f.message.id, next_free));
        }
        for s in stations.iter_mut() {
            s.observe(now, next_free, &obs);
        }
        if !diverged {
            let first = stations[0].shared_state_digest();
            if stations[1..]
                .iter()
                .any(|s| s.shared_state_digest() != first)
            {
                report.findings.push(Finding {
                    scenario_index: index,
                    violation: Violation::ReplicaDivergence { step },
                });
                diverged = true; // report once, keep running other checks
            }
        }
        now = next_free;
    }

    // Exactly-once.
    let mut seen = std::collections::HashSet::new();
    for &(id, _) in &deliveries {
        let scheduled = scenario.iter().any(|m| m.id == id);
        if !seen.insert(id) || !scheduled {
            report.findings.push(Finding {
                scenario_index: index,
                violation: Violation::DuplicateOrInvented { id },
            });
        }
    }
    if deliveries.len() != scenario.len() && seen.len() == deliveries.len() {
        report.findings.push(Finding {
            scenario_index: index,
            violation: Violation::NotDrained {
                backlog: scenario.len() - deliveries.len(),
            },
        });
    }

    // Causality.
    for &(id, completed) in &deliveries {
        let msg = scenario.iter().find(|m| m.id == id).expect("scheduled");
        let wire = Ticks(msg.bits + medium.overhead_bits);
        if completed < msg.arrival + wire {
            report.findings.push(Finding {
                scenario_index: index,
                violation: Violation::CausalityViolation { id },
            });
        }
    }

    // Strict EDF emulation, where the scenario qualifies: simultaneous
    // arrivals, pairwise-distinct sources, DM separation ≥ 2 classes.
    let (cfg, ..) = (config, &allocation, medium);
    let c = cfg.class_width.as_u64();
    let qualifies = {
        let all_zero = scenario.iter().all(|m| m.arrival == Ticks::ZERO);
        let mut sources: Vec<u32> = scenario.iter().map(|m| m.source.0).collect();
        sources.sort_unstable();
        sources.dedup();
        let distinct_sources = sources.len() == scenario.len();
        let mut dms: Vec<u64> =
            scenario.iter().map(|m| m.absolute_deadline().as_u64()).collect();
        dms.sort_unstable();
        let separated = dms.windows(2).all(|p| p[1] - p[0] >= 2 * c);
        all_zero && distinct_sources && separated
    };
    if qualifies {
        report.edf_checked += 1;
        let mut expected: Vec<&Message> = scenario.iter().collect();
        expected.sort_by_key(|m| m.absolute_deadline());
        let expected: Vec<u64> = expected.iter().map(|m| m.id.0).collect();
        let got: Vec<u64> = deliveries.iter().map(|(id, _)| id.0).collect();
        if got != expected {
            report.findings.push(Finding {
                scenario_index: index,
                violation: Violation::EdfOrderViolation { got, expected },
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scope_verifies_clean() {
        let scope = Scope::small();
        let report = check_scope(&scope, 3_000);
        assert_eq!(report.scenarios, scope.scenario_count());
        assert!(
            report.clean(),
            "violations: {:?}",
            &report.findings[..report.findings.len().min(5)]
        );
        assert!(report.edf_checked > 0, "EDF check never applied");
    }

    #[test]
    fn single_scenario_replay_matches() {
        let scope = Scope::small();
        let mut report = CheckReport::default();
        check_scenario(scope.stations, 7, &scope.scenario(7), 3_000, &mut report);
        assert!(report.clean());
    }

    #[test]
    fn budget_exhaustion_reports_not_drained() {
        // One slot is never enough to drain anything.
        let scope = Scope::small();
        let mut report = CheckReport::default();
        check_scenario(scope.stations, 0, &scope.scenario(0), 1, &mut report);
        assert!(matches!(
            report.findings[0].violation,
            Violation::NotDrained { .. }
        ));
    }
}
