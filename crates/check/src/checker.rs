//! The bounded model checker: drives CSMA/DDCR replicas through every
//! scenario in a [`Scope`](crate::Scope) and checks the correctness
//! properties the paper claims.
//!
//! Checked invariants, per scenario:
//!
//! * **Liveness** — every message is delivered within the slot budget;
//! * **Exactly-once** — no duplicate or invented deliveries;
//! * **Replica consistency** — all stations' shared-state digests agree
//!   after every slot (the protocol is a replicated deterministic
//!   automaton);
//! * **Causality** — no delivery completes before `arrival + wire time`;
//! * **EDF emulation** — when all messages arrive simultaneously from
//!   distinct sources with absolute deadlines separated by at least two
//!   deadline classes, delivery order is exactly EDF order (checked under
//!   destructive collisions only: arbitration lets a lower-numbered source
//!   win a slot it would destructively have lost, a bounded priority
//!   inversion the strict check does not model).
//!
//! The fault-aware entry points ([`check_scope_with_faults`]) re-run the
//! same replicas under an injected [`FaultPlan`] and check the weakened
//! properties that survive faults: safety always (no duplicate, invented,
//! or causality-violating delivery; lost messages stay lost), replica
//! divergence only for crashed/resyncing stations, and bounded healing —
//! a restarted station that observes a post-restart epoch anchor must
//! resynchronize in that very slot.

use crate::scope::Scope;
use ddcr_core::{DdcrConfig, DdcrStation, StaticAllocation};
use ddcr_sim::rng::{derive_seed, fault_seed};
use ddcr_sim::{
    Action, CollisionMode, FaultEvent, FaultKind, FaultPlan, Frame, MediumConfig, Message,
    MessageId, Observation, Station, Ticks,
};

/// A property violated by a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Not every message was delivered within the slot budget.
    NotDrained {
        /// Messages still queued.
        backlog: usize,
    },
    /// A message was delivered more than once, or a delivery appeared for
    /// a message never scheduled.
    DuplicateOrInvented {
        /// The offending message.
        id: MessageId,
    },
    /// Two replicas disagreed on shared protocol state. Under faults this
    /// covers only stations claiming to be synchronized — crashed and
    /// resyncing replicas are allowed (expected) to lag.
    ReplicaDivergence {
        /// Slot ordinal of the divergence.
        step: u64,
    },
    /// A delivery completed before it physically could.
    CausalityViolation {
        /// The offending message.
        id: MessageId,
    },
    /// Deliveries were not in EDF order although the scenario qualifies
    /// for strict EDF emulation.
    EdfOrderViolation {
        /// Delivered order (message ids).
        got: Vec<u64>,
        /// EDF order (message ids).
        expected: Vec<u64>,
    },
    /// A restarted station observed a frame stamped with a post-restart
    /// epoch — a valid resynchronization anchor — yet stayed unsynced.
    UnhealedRestart {
        /// The station that failed to heal.
        station: u32,
        /// Slot ordinal of the missed anchor.
        step: u64,
    },
    /// A message recorded as lost in a station crash was delivered anyway.
    LostMessageDelivered {
        /// The offending message.
        id: MessageId,
    },
}

/// One scenario's verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Index into the scope's enumeration (replay with
    /// [`Scope::scenario`]).
    pub scenario_index: usize,
    /// The violated property.
    pub violation: Violation,
}

/// Aggregate result of checking a whole scope.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Scenarios enumerated.
    pub scenarios: usize,
    /// Scenarios that qualified for (and passed) the strict-EDF check.
    pub edf_checked: usize,
    /// All violations found, in enumeration order.
    pub findings: Vec<Finding>,
}

impl CheckReport {
    /// Whether the scope verified cleanly.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Aggregate result of checking a whole scope under injected faults.
#[derive(Debug, Clone, Default)]
pub struct FaultCheckReport {
    /// Scenarios enumerated.
    pub scenarios: usize,
    /// All violations found, in enumeration order.
    pub findings: Vec<Finding>,
    /// Crash events injected across all scenarios.
    pub crashes: u64,
    /// Restarted stations that resynchronized.
    pub rejoins: u64,
    /// Worst observed heal time: decision slots from restart to rejoin.
    pub max_heal_slots: u64,
    /// Scenarios that timed out under faults but verify cleanly without
    /// them — the timeout is attributable to the injected faults (e.g. a
    /// resyncing station whose backlog cannot drain because the channel
    /// stays silent, so no epoch anchor ever arrives), not a protocol bug.
    pub attributable_timeouts: usize,
}

impl FaultCheckReport {
    /// Whether the scope verified cleanly under the fault plans.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// The checker's protocol parameters (kept small so searches stay short).
fn config(z: u32, mode: CollisionMode) -> (DdcrConfig, StaticAllocation, MediumConfig) {
    let medium = MediumConfig {
        collision_mode: mode,
        ..MediumConfig::ethernet()
    };
    let config = DdcrConfig::for_sources(z, Ticks(100_000)).expect("checker config");
    let allocation =
        StaticAllocation::one_per_source(config.static_tree, z).expect("checker allocation");
    (config, allocation, medium)
}

/// Earliest instant a delivery of `m` can physically complete: arrival
/// plus the Ph-PDU wire time `l'(m)` — routed through
/// [`MediumConfig::wire_bits`] so the checker can never drift from the
/// engine's framing-overhead accounting.
fn causality_bound(medium: &MediumConfig, m: &Message) -> Ticks {
    m.arrival + Ticks(medium.wire_bits(m.bits))
}

/// Exhaustively checks every scenario in the scope under destructive
/// (Ethernet) collision semantics.
///
/// `slot_budget` bounds each scenario's length (a conforming network
/// drains the small scopes within a few hundred slots; the budget exists
/// to convert a liveness bug into a finding rather than a hang).
pub fn check_scope(scope: &Scope, slot_budget: u64) -> CheckReport {
    check_scope_with_mode(scope, slot_budget, CollisionMode::Destructive)
}

/// Exhaustively checks every scenario in the scope under the given
/// collision semantics.
pub fn check_scope_with_mode(
    scope: &Scope,
    slot_budget: u64,
    mode: CollisionMode,
) -> CheckReport {
    let mut report = CheckReport::default();
    for (index, scenario) in scope.scenarios().enumerate() {
        report.scenarios += 1;
        check_scenario(scope.stations, index, &scenario, slot_budget, mode, &mut report);
    }
    report
}

/// Checks a single scenario (public so findings can be replayed and
/// minimised by hand).
pub fn check_scenario(
    z: u32,
    index: usize,
    scenario: &[Message],
    slot_budget: u64,
    mode: CollisionMode,
    report: &mut CheckReport,
) {
    let (config, allocation, medium) = config(z, mode);
    let mut stations: Vec<DdcrStation> = (0..z)
        .map(|i| {
            DdcrStation::new(
                ddcr_sim::SourceId(i),
                config,
                allocation.clone(),
                medium.overhead_bits,
            )
            .expect("station")
        })
        .collect();
    let mut arrivals = scenario.to_vec();
    arrivals.sort_by_key(|m| (m.arrival, m.id));

    let mut deliveries: Vec<(MessageId, Ticks)> = Vec::new();
    let mut now = Ticks::ZERO;
    let mut next = 0usize;
    let mut step = 0u64;
    let mut diverged = false;
    while next < arrivals.len() || stations.iter().any(|s| s.backlog() > 0) {
        if step >= slot_budget {
            report.findings.push(Finding {
                scenario_index: index,
                violation: Violation::NotDrained {
                    backlog: stations.iter().map(|s| s.backlog()).sum(),
                },
            });
            return;
        }
        step += 1;
        while next < arrivals.len() && arrivals[next].arrival <= now {
            let m = arrivals[next];
            stations[m.source.0 as usize].deliver(m);
            next += 1;
        }
        let frames: Vec<Frame> = stations
            .iter_mut()
            .filter_map(|s| match s.poll(now) {
                Action::Transmit(f) => Some(f),
                Action::Idle => None,
            })
            .collect();
        // The engine's own resolution — semantics cannot drift apart.
        let (obs, advance) = medium.resolve(&frames);
        let next_free = now + advance;
        match obs {
            Observation::Busy(f)
            | Observation::Collision {
                survivor: Some(f), ..
            } => deliveries.push((f.message.id, next_free)),
            _ => {}
        }
        for s in stations.iter_mut() {
            s.observe(now, next_free, &obs);
        }
        if !diverged {
            let first = stations[0].shared_state_digest();
            if stations[1..]
                .iter()
                .any(|s| s.shared_state_digest() != first)
            {
                report.findings.push(Finding {
                    scenario_index: index,
                    violation: Violation::ReplicaDivergence { step },
                });
                diverged = true; // report once, keep running other checks
            }
        }
        now = next_free;
    }

    // Exactly-once.
    let mut seen = std::collections::HashSet::new();
    for &(id, _) in &deliveries {
        let scheduled = scenario.iter().any(|m| m.id == id);
        if !seen.insert(id) || !scheduled {
            report.findings.push(Finding {
                scenario_index: index,
                violation: Violation::DuplicateOrInvented { id },
            });
        }
    }
    if deliveries.len() != scenario.len() && seen.len() == deliveries.len() {
        report.findings.push(Finding {
            scenario_index: index,
            violation: Violation::NotDrained {
                backlog: scenario.len() - deliveries.len(),
            },
        });
    }

    // Causality.
    for &(id, completed) in &deliveries {
        let Some(msg) = scenario.iter().find(|m| m.id == id) else {
            continue; // invented delivery, already reported above
        };
        if completed < causality_bound(&medium, msg) {
            report.findings.push(Finding {
                scenario_index: index,
                violation: Violation::CausalityViolation { id },
            });
        }
    }

    // Strict EDF emulation, where the scenario qualifies: simultaneous
    // arrivals, pairwise-distinct sources, DM separation ≥ 2 classes.
    // Destructive collisions only — see the module docs.
    let c = config.class_width.as_u64();
    let qualifies = {
        let all_zero = scenario.iter().all(|m| m.arrival == Ticks::ZERO);
        let mut sources: Vec<u32> = scenario.iter().map(|m| m.source.0).collect();
        sources.sort_unstable();
        sources.dedup();
        let distinct_sources = sources.len() == scenario.len();
        let mut dms: Vec<u64> =
            scenario.iter().map(|m| m.absolute_deadline().as_u64()).collect();
        dms.sort_unstable();
        let separated = dms.windows(2).all(|p| p[1] - p[0] >= 2 * c);
        all_zero && distinct_sources && separated
    };
    if qualifies && mode == CollisionMode::Destructive {
        report.edf_checked += 1;
        let mut expected: Vec<&Message> = scenario.iter().collect();
        expected.sort_by_key(|m| m.absolute_deadline());
        let expected: Vec<u64> = expected.iter().map(|m| m.id.0).collect();
        let got: Vec<u64> = deliveries.iter().map(|(id, _)| id.0).collect();
        if got != expected {
            report.findings.push(Finding {
                scenario_index: index,
                violation: Violation::EdfOrderViolation { got, expected },
            });
        }
    }
}

/// The seeded adversarial fault plan for one scenario: one corrupted
/// slot, one erasure attempt, and exactly one station crash (station,
/// instant and outage length all seed-derived), placed in the opening
/// slots where the small scopes do their tree searches.
pub fn adversarial_plan(seed: u64, scenario_index: usize, stations: u32) -> FaultPlan {
    let base = fault_seed(seed, scenario_index as u64);
    let pick = |lane: u64, modulus: u64| derive_seed(base, lane) % modulus;
    FaultPlan::from_events(vec![
        FaultEvent {
            slot: pick(0, 8),
            kind: FaultKind::CorruptSlot,
        },
        FaultEvent {
            slot: pick(1, 12),
            kind: FaultKind::EraseFrame,
        },
        FaultEvent {
            slot: 2 + pick(2, 8),
            kind: FaultKind::Crash {
                station: pick(3, u64::from(stations)) as u32,
                down_slots: 4 + pick(4, 8),
            },
        },
    ])
}

/// Checks every scenario in the scope under a seeded adversarial fault
/// plan (a fresh plan per scenario, see [`adversarial_plan`]).
pub fn check_scope_with_faults(
    scope: &Scope,
    slot_budget: u64,
    mode: CollisionMode,
    seed: u64,
) -> FaultCheckReport {
    let mut report = FaultCheckReport::default();
    for (index, scenario) in scope.scenarios().enumerate() {
        report.scenarios += 1;
        let plan = adversarial_plan(seed, index, scope.stations);
        check_scenario_with_faults(
            scope.stations,
            index,
            &scenario,
            slot_budget,
            mode,
            &plan,
            &mut report,
        );
    }
    report
}

/// Checks a single scenario under an explicit fault plan.
///
/// Mirrors the engine's fault handling exactly: restarts are processed
/// before crashes at each slot ordinal, crashed stations are fenced (no
/// deliver/poll/observe; their arrivals are lost), and channel faults are
/// applied to the resolved observation via [`FaultPlan::apply`].
pub fn check_scenario_with_faults(
    z: u32,
    index: usize,
    scenario: &[Message],
    slot_budget: u64,
    mode: CollisionMode,
    plan: &FaultPlan,
    report: &mut FaultCheckReport,
) {
    let (config, allocation, medium) = config(z, mode);
    let mut stations: Vec<DdcrStation> = (0..z)
        .map(|i| {
            DdcrStation::new(
                ddcr_sim::SourceId(i),
                config,
                allocation.clone(),
                medium.overhead_bits,
            )
            .expect("station")
        })
        .collect();
    let mut arrivals = scenario.to_vec();
    arrivals.sort_by_key(|m| (m.arrival, m.id));

    let mut deliveries: Vec<(MessageId, Ticks)> = Vec::new();
    let mut lost: Vec<MessageId> = Vec::new();
    // Restart ordinal per crashed station, and (restart step, restart
    // time) per station currently resynchronizing.
    let mut down: Vec<Option<u64>> = vec![None; z as usize];
    let mut resyncing: Vec<Option<(u64, Ticks)>> = vec![None; z as usize];
    let mut now = Ticks::ZERO;
    let mut next = 0usize;
    let mut step = 0u64;
    let mut diverged = false;
    loop {
        // Fault transitions at this ordinal: restarts first, then crashes
        // (same order as the engine).
        for i in 0..stations.len() {
            if down[i].is_some_and(|at| at <= step) {
                down[i] = None;
                stations[i].restart(now);
                resyncing[i] = Some((step, now));
            }
        }
        for (station, down_slots) in plan.crashes_at(step) {
            let i = station as usize;
            if i < stations.len() && down[i].is_none() {
                report.crashes += 1;
                lost.extend(stations[i].crash(now).into_iter().map(|m| m.id));
                down[i] = Some(step + down_slots.max(1));
                resyncing[i] = None;
            }
        }
        if next >= arrivals.len() && stations.iter().all(|s| s.backlog() == 0) {
            break;
        }
        if step >= slot_budget {
            // Timed out under faults. Attribute: if the same scenario
            // verifies cleanly fault-free, the injected faults caused the
            // timeout (typically a resyncing station starved of epoch
            // anchors by channel silence); otherwise it is a real bug.
            let mut fault_free = CheckReport::default();
            check_scenario(z, index, scenario, slot_budget, mode, &mut fault_free);
            if fault_free.clean() {
                report.attributable_timeouts += 1;
            } else {
                report.findings.push(Finding {
                    scenario_index: index,
                    violation: Violation::NotDrained {
                        backlog: stations.iter().map(|s| s.backlog()).sum(),
                    },
                });
            }
            return;
        }
        while next < arrivals.len() && arrivals[next].arrival <= now {
            let m = arrivals[next];
            let i = m.source.0 as usize;
            if down[i].is_some() {
                lost.push(m.id); // its network module is dead
            } else {
                stations[i].deliver(m);
            }
            next += 1;
        }
        let frames: Vec<Frame> = stations
            .iter_mut()
            .enumerate()
            .filter(|(i, _)| down[*i].is_none())
            .filter_map(|(_, s)| match s.poll(now) {
                Action::Transmit(f) => Some(f),
                Action::Idle => None,
            })
            .collect();
        let (obs, advance) = medium.resolve(&frames);
        let (obs, advance, _slot_faults) =
            plan.apply(step, Ticks(medium.slot_ticks), obs, advance);
        let next_free = now + advance;
        match obs {
            Observation::Busy(f)
            | Observation::Collision {
                survivor: Some(f), ..
            } => deliveries.push((f.message.id, next_free)),
            _ => {}
        }
        for (i, s) in stations.iter_mut().enumerate() {
            if down[i].is_none() {
                s.observe(now, next_free, &obs);
            }
        }
        // Healing: a resyncing station either rejoined this slot, or must
        // have if the slot carried a post-restart epoch anchor (the exact
        // rule the protocol's resync mode implements).
        let anchor = match obs {
            Observation::Busy(f)
            | Observation::Collision {
                survivor: Some(f), ..
            } => f.epoch,
            _ => None,
        };
        for i in 0..stations.len() {
            let Some((restart_step, restart_at)) = resyncing[i] else {
                continue;
            };
            if stations[i].is_synced() {
                report.rejoins += 1;
                report.max_heal_slots = report.max_heal_slots.max(step - restart_step + 1);
                resyncing[i] = None;
            } else if anchor.is_some_and(|stamp| stamp.start >= restart_at) {
                report.findings.push(Finding {
                    scenario_index: index,
                    violation: Violation::UnhealedRestart {
                        station: i as u32,
                        step,
                    },
                });
                resyncing[i] = None; // report once
            }
        }
        // Divergence among replicas claiming to be synchronized; crashed
        // and resyncing stations are expected to lag.
        if !diverged {
            let digests: Vec<String> = stations
                .iter()
                .enumerate()
                .filter(|(i, s)| down[*i].is_none() && s.is_synced())
                .map(|(_, s)| s.shared_state_digest())
                .collect();
            if digests.windows(2).any(|w| w[0] != w[1]) {
                report.findings.push(Finding {
                    scenario_index: index,
                    violation: Violation::ReplicaDivergence { step },
                });
                diverged = true;
            }
        }
        now = next_free;
        step += 1;
    }

    // Safety under faults: deliveries unique, scheduled, and never of a
    // message recorded lost.
    let lost_set: std::collections::HashSet<MessageId> = lost.iter().copied().collect();
    let mut seen = std::collections::HashSet::new();
    for &(id, _) in &deliveries {
        let scheduled = scenario.iter().any(|m| m.id == id);
        if !seen.insert(id) || !scheduled {
            report.findings.push(Finding {
                scenario_index: index,
                violation: Violation::DuplicateOrInvented { id },
            });
        } else if lost_set.contains(&id) {
            report.findings.push(Finding {
                scenario_index: index,
                violation: Violation::LostMessageDelivered { id },
            });
        }
    }
    // Completeness: the loop only exits drained, so every scheduled
    // message must be accounted for — delivered or lost in a crash.
    for m in scenario {
        if !seen.contains(&m.id) && !lost_set.contains(&m.id) {
            report.findings.push(Finding {
                scenario_index: index,
                violation: Violation::NotDrained { backlog: 1 },
            });
        }
    }
    // Causality holds under faults too.
    for &(id, completed) in &deliveries {
        let Some(msg) = scenario.iter().find(|m| m.id == id) else {
            continue;
        };
        if completed < causality_bound(&medium, msg) {
            report.findings.push(Finding {
                scenario_index: index,
                violation: Violation::CausalityViolation { id },
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scope_verifies_clean() {
        let scope = Scope::small();
        let report = check_scope(&scope, 3_000);
        assert_eq!(report.scenarios, scope.scenario_count());
        assert!(
            report.clean(),
            "violations: {:?}",
            &report.findings[..report.findings.len().min(5)]
        );
        assert!(report.edf_checked > 0, "EDF check never applied");
    }

    #[test]
    fn small_scope_verifies_clean_under_arbitration() {
        let scope = Scope::small();
        let report = check_scope_with_mode(&scope, 3_000, CollisionMode::Arbitrating);
        assert_eq!(report.scenarios, scope.scenario_count());
        assert!(
            report.clean(),
            "violations: {:?}",
            &report.findings[..report.findings.len().min(5)]
        );
        // The strict-EDF check is destructive-only.
        assert_eq!(report.edf_checked, 0);
    }

    #[test]
    fn single_scenario_replay_matches() {
        let scope = Scope::small();
        let mut report = CheckReport::default();
        check_scenario(
            scope.stations,
            7,
            &scope.scenario(7),
            3_000,
            CollisionMode::Destructive,
            &mut report,
        );
        assert!(report.clean());
    }

    #[test]
    fn budget_exhaustion_reports_not_drained() {
        // One slot is never enough to drain anything.
        let scope = Scope::small();
        let mut report = CheckReport::default();
        check_scenario(
            scope.stations,
            0,
            &scope.scenario(0),
            1,
            CollisionMode::Destructive,
            &mut report,
        );
        assert!(matches!(
            report.findings[0].violation,
            Violation::NotDrained { .. }
        ));
    }

    #[test]
    fn causality_bound_is_arrival_plus_wire_bits() {
        // Pin: the bound is routed through MediumConfig::wire_bits — the
        // same l'(m) = l(m) + overhead the engine charges the channel —
        // not an inline re-derivation that could drift.
        let medium = MediumConfig::ethernet();
        let m = Message {
            id: MessageId(0),
            source: ddcr_sim::SourceId(0),
            class: ddcr_sim::ClassId(0),
            bits: 2_000,
            arrival: Ticks(700),
            deadline: Ticks(400_000),
        };
        assert_eq!(
            causality_bound(&medium, &m),
            Ticks(700 + medium.wire_bits(2_000))
        );
        assert_eq!(causality_bound(&medium, &m), Ticks(700 + 2_000 + 26 * 8));
    }

    #[test]
    fn arbitrated_survivors_count_as_deliveries() {
        // Two simultaneous arrivals at distinct sources collide under
        // arbitration; the survivor's frame goes through. If the checker
        // dropped survivor deliveries it would report these scenarios
        // undrained (the winning source dequeues on the survival).
        let scope = Scope {
            stations: 2,
            messages: 2,
            arrival_choices: vec![0],
            deadline_choices: vec![400_000],
            bits_choices: vec![2_000],
        };
        let report = check_scope_with_mode(&scope, 3_000, CollisionMode::Arbitrating);
        assert!(report.clean(), "violations: {:?}", report.findings);
    }

    #[test]
    fn adversarial_plans_are_seeded_and_always_crash_once() {
        let a = adversarial_plan(42, 17, 2);
        let b = adversarial_plan(42, 17, 2);
        assert_eq!(a, b);
        let c = adversarial_plan(43, 17, 2);
        assert_ne!(a, c);
        let crashes: Vec<_> = a
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Crash { .. }))
            .collect();
        assert_eq!(crashes.len(), 1);
    }

    #[test]
    fn small_scope_is_safe_under_adversarial_faults() {
        let scope = Scope::small();
        let report = check_scope_with_faults(&scope, 3_000, CollisionMode::Destructive, 42);
        assert_eq!(report.scenarios, scope.scenario_count());
        assert!(
            report.clean(),
            "violations: {:?}",
            &report.findings[..report.findings.len().min(5)]
        );
        assert!(report.crashes > 0, "the adversarial plans never crashed");
        assert!(report.rejoins > 0, "no station ever resynchronized");
        assert!(
            report.max_heal_slots > 0 && report.max_heal_slots < 3_000,
            "heal time unbounded: {}",
            report.max_heal_slots
        );
    }

    #[test]
    fn empty_fault_plan_matches_faultless_checker() {
        // Under FaultPlan::none() the fault-aware loop must reach the
        // same verdict as the plain checker on every scenario.
        let scope = Scope::small();
        let plan = FaultPlan::none();
        let mut fault_report = FaultCheckReport::default();
        for (index, scenario) in scope.scenarios().enumerate() {
            fault_report.scenarios += 1;
            check_scenario_with_faults(
                scope.stations,
                index,
                &scenario,
                3_000,
                CollisionMode::Destructive,
                &plan,
                &mut fault_report,
            );
        }
        assert!(fault_report.clean(), "{:?}", fault_report.findings);
        assert_eq!(fault_report.crashes, 0);
        assert_eq!(fault_report.attributable_timeouts, 0);
    }
}
