//! The bounded model checker: drives CSMA/DDCR replicas through every
//! scenario in a [`Scope`](crate::Scope) and checks the correctness
//! properties the paper claims.
//!
//! Checked invariants, per scenario:
//!
//! * **Liveness** — every message is delivered within the slot budget;
//! * **Exactly-once** — no duplicate or invented deliveries;
//! * **Replica consistency** — all stations' shared-state digests agree
//!   after every slot (the protocol is a replicated deterministic
//!   automaton);
//! * **Causality** — no delivery completes before `arrival + wire time`;
//! * **EDF emulation** — when all messages arrive simultaneously from
//!   distinct sources with absolute deadlines separated by at least two
//!   deadline classes, delivery order is exactly EDF order (checked under
//!   destructive collisions only: arbitration lets a lower-numbered source
//!   win a slot it would destructively have lost, a bounded priority
//!   inversion the strict check does not model).
//!
//! The fault-aware entry points ([`check_scope_with_faults`]) re-run the
//! same replicas under an injected [`FaultPlan`] and check the weakened
//! properties that survive faults: safety always (no duplicate, invented,
//! or causality-violating delivery; lost messages stay lost), replica
//! divergence only for crashed/resyncing stations, and bounded healing —
//! a restarted station that observes a post-restart epoch anchor must
//! resynchronize in that very slot.

use crate::scope::Scope;
use ddcr_core::{DdcrConfig, DdcrStation, StaticAllocation};
use ddcr_sim::rng::{derive_seed, fault_seed};
use ddcr_sim::{
    Action, CollisionMode, FaultEvent, FaultKind, FaultPlan, Frame, MediumConfig, MembershipChange,
    MembershipPlan, Message, MessageId, Observation, Station, Ticks,
};

/// A property violated by a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Not every message was delivered within the slot budget.
    NotDrained {
        /// Messages still queued.
        backlog: usize,
    },
    /// A message was delivered more than once, or a delivery appeared for
    /// a message never scheduled.
    DuplicateOrInvented {
        /// The offending message.
        id: MessageId,
    },
    /// Two replicas disagreed on shared protocol state. Under faults this
    /// covers only stations claiming to be synchronized — crashed and
    /// resyncing replicas are allowed (expected) to lag.
    ReplicaDivergence {
        /// Slot ordinal of the divergence.
        step: u64,
    },
    /// A delivery completed before it physically could.
    CausalityViolation {
        /// The offending message.
        id: MessageId,
    },
    /// Deliveries were not in EDF order although the scenario qualifies
    /// for strict EDF emulation.
    EdfOrderViolation {
        /// Delivered order (message ids).
        got: Vec<u64>,
        /// EDF order (message ids).
        expected: Vec<u64>,
    },
    /// A restarted station observed a frame stamped with a post-restart
    /// epoch — a valid resynchronization anchor — yet stayed unsynced.
    UnhealedRestart {
        /// The station that failed to heal.
        station: u32,
        /// Slot ordinal of the missed anchor.
        step: u64,
    },
    /// A message recorded as lost in a station crash was delivered anyway.
    LostMessageDelivered {
        /// The offending message.
        id: MessageId,
    },
    /// A delivered message of an admitted flow completed after its
    /// absolute deadline — the property membership churn must not break:
    /// join/leave transitions may delay *lost* traffic (the leaver's own
    /// queue) but never push a surviving flow past its deadline.
    DeadlineMiss {
        /// The offending message.
        id: MessageId,
        /// When the delivery completed.
        completed: Ticks,
        /// The absolute deadline it missed.
        deadline: Ticks,
    },
}

/// One scenario's verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Index into the scope's enumeration (replay with
    /// [`Scope::scenario`]).
    pub scenario_index: usize,
    /// The violated property.
    pub violation: Violation,
}

/// Aggregate result of checking a whole scope.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Scenarios enumerated.
    pub scenarios: usize,
    /// Scenarios that qualified for (and passed) the strict-EDF check.
    pub edf_checked: usize,
    /// All violations found, in enumeration order.
    pub findings: Vec<Finding>,
}

impl CheckReport {
    /// Whether the scope verified cleanly.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Aggregate result of checking a whole scope under injected faults.
#[derive(Debug, Clone, Default)]
pub struct FaultCheckReport {
    /// Scenarios enumerated.
    pub scenarios: usize,
    /// All violations found, in enumeration order.
    pub findings: Vec<Finding>,
    /// Crash events injected across all scenarios.
    pub crashes: u64,
    /// Restarted stations that resynchronized.
    pub rejoins: u64,
    /// Worst observed heal time: decision slots from restart to rejoin.
    pub max_heal_slots: u64,
    /// Scenarios that timed out under faults but verify cleanly without
    /// them — the timeout is attributable to the injected faults (e.g. a
    /// resyncing station whose backlog cannot drain because the channel
    /// stays silent, so no epoch anchor ever arrives), not a protocol bug.
    pub attributable_timeouts: usize,
}

impl FaultCheckReport {
    /// Whether the scope verified cleanly under the fault plans.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Aggregate result of checking a scope under membership churn
/// interleaved with adversarial faults.
#[derive(Debug, Clone, Default)]
pub struct MembershipCheckReport {
    /// Scenarios enumerated.
    pub scenarios: usize,
    /// All violations found, in enumeration order.
    pub findings: Vec<Finding>,
    /// Join transitions that actually applied (station was absent).
    pub joins: u64,
    /// Leave transitions that actually applied (station was present).
    pub leaves: u64,
    /// Crash events injected across all scenarios.
    pub crashes: u64,
    /// Restarted or rejoined stations that resynchronized.
    pub rejoins: u64,
    /// Worst observed heal time: decision slots from restart/join to sync.
    pub max_heal_slots: u64,
    /// Timeouts attributable to the injected faults or churn (the same
    /// scenario verifies cleanly without them), not to a protocol bug.
    pub attributable_timeouts: usize,
    /// Deliveries whose deadline was checked (every delivery of a
    /// scheduled message).
    pub deadline_checked: u64,
}

impl MembershipCheckReport {
    /// Whether the scope verified cleanly under churn and faults.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// The checker's protocol parameters (kept small so searches stay short).
fn config(z: u32, mode: CollisionMode) -> (DdcrConfig, StaticAllocation, MediumConfig) {
    let medium = MediumConfig {
        collision_mode: mode,
        ..MediumConfig::ethernet()
    };
    let config = DdcrConfig::for_sources(z, Ticks(100_000)).expect("checker config");
    let allocation =
        StaticAllocation::one_per_source(config.static_tree, z).expect("checker allocation");
    (config, allocation, medium)
}

/// Earliest instant a delivery of `m` can physically complete: arrival
/// plus the Ph-PDU wire time `l'(m)` — routed through
/// [`MediumConfig::wire_bits`] so the checker can never drift from the
/// engine's framing-overhead accounting.
fn causality_bound(medium: &MediumConfig, m: &Message) -> Ticks {
    m.arrival + Ticks(medium.wire_bits(m.bits))
}

/// Exhaustively checks every scenario in the scope under destructive
/// (Ethernet) collision semantics.
///
/// `slot_budget` bounds each scenario's length (a conforming network
/// drains the small scopes within a few hundred slots; the budget exists
/// to convert a liveness bug into a finding rather than a hang).
pub fn check_scope(scope: &Scope, slot_budget: u64) -> CheckReport {
    check_scope_with_mode(scope, slot_budget, CollisionMode::Destructive)
}

/// Exhaustively checks every scenario in the scope under the given
/// collision semantics.
pub fn check_scope_with_mode(
    scope: &Scope,
    slot_budget: u64,
    mode: CollisionMode,
) -> CheckReport {
    let mut report = CheckReport::default();
    for (index, scenario) in scope.scenarios().enumerate() {
        report.scenarios += 1;
        check_scenario(scope.stations, index, &scenario, slot_budget, mode, &mut report);
    }
    report
}

/// Checks a single scenario (public so findings can be replayed and
/// minimised by hand).
pub fn check_scenario(
    z: u32,
    index: usize,
    scenario: &[Message],
    slot_budget: u64,
    mode: CollisionMode,
    report: &mut CheckReport,
) {
    let (config, allocation, medium) = config(z, mode);
    let mut stations: Vec<DdcrStation> = (0..z)
        .map(|i| {
            DdcrStation::new(
                ddcr_sim::SourceId(i),
                config,
                allocation.clone(),
                medium.overhead_bits,
            )
            .expect("station")
        })
        .collect();
    let mut arrivals = scenario.to_vec();
    arrivals.sort_by_key(|m| (m.arrival, m.id));

    let mut deliveries: Vec<(MessageId, Ticks)> = Vec::new();
    let mut now = Ticks::ZERO;
    let mut next = 0usize;
    let mut step = 0u64;
    let mut diverged = false;
    while next < arrivals.len() || stations.iter().any(|s| s.backlog() > 0) {
        if step >= slot_budget {
            report.findings.push(Finding {
                scenario_index: index,
                violation: Violation::NotDrained {
                    backlog: stations.iter().map(|s| s.backlog()).sum(),
                },
            });
            return;
        }
        step += 1;
        while next < arrivals.len() && arrivals[next].arrival <= now {
            let m = arrivals[next];
            stations[m.source.0 as usize].deliver(m);
            next += 1;
        }
        let frames: Vec<Frame> = stations
            .iter_mut()
            .filter_map(|s| match s.poll(now) {
                Action::Transmit(f) => Some(f),
                Action::Idle => None,
            })
            .collect();
        // The engine's own resolution — semantics cannot drift apart.
        let (obs, advance) = medium.resolve(&frames);
        let next_free = now + advance;
        match obs {
            Observation::Busy(f)
            | Observation::Collision {
                survivor: Some(f), ..
            } => deliveries.push((f.message.id, next_free)),
            _ => {}
        }
        for s in stations.iter_mut() {
            s.observe(now, next_free, &obs);
        }
        if !diverged {
            let first = stations[0].shared_state_digest();
            if stations[1..]
                .iter()
                .any(|s| s.shared_state_digest() != first)
            {
                report.findings.push(Finding {
                    scenario_index: index,
                    violation: Violation::ReplicaDivergence { step },
                });
                diverged = true; // report once, keep running other checks
            }
        }
        now = next_free;
    }

    // Exactly-once.
    let mut seen = std::collections::HashSet::new();
    for &(id, _) in &deliveries {
        let scheduled = scenario.iter().any(|m| m.id == id);
        if !seen.insert(id) || !scheduled {
            report.findings.push(Finding {
                scenario_index: index,
                violation: Violation::DuplicateOrInvented { id },
            });
        }
    }
    if deliveries.len() != scenario.len() && seen.len() == deliveries.len() {
        report.findings.push(Finding {
            scenario_index: index,
            violation: Violation::NotDrained {
                backlog: scenario.len() - deliveries.len(),
            },
        });
    }

    // Causality.
    for &(id, completed) in &deliveries {
        let Some(msg) = scenario.iter().find(|m| m.id == id) else {
            continue; // invented delivery, already reported above
        };
        if completed < causality_bound(&medium, msg) {
            report.findings.push(Finding {
                scenario_index: index,
                violation: Violation::CausalityViolation { id },
            });
        }
    }

    // Strict EDF emulation, where the scenario qualifies: simultaneous
    // arrivals, pairwise-distinct sources, DM separation ≥ 2 classes.
    // Destructive collisions only — see the module docs.
    let c = config.class_width.as_u64();
    let qualifies = {
        let all_zero = scenario.iter().all(|m| m.arrival == Ticks::ZERO);
        let mut sources: Vec<u32> = scenario.iter().map(|m| m.source.0).collect();
        sources.sort_unstable();
        sources.dedup();
        let distinct_sources = sources.len() == scenario.len();
        let mut dms: Vec<u64> =
            scenario.iter().map(|m| m.absolute_deadline().as_u64()).collect();
        dms.sort_unstable();
        let separated = dms.windows(2).all(|p| p[1] - p[0] >= 2 * c);
        all_zero && distinct_sources && separated
    };
    if qualifies && mode == CollisionMode::Destructive {
        report.edf_checked += 1;
        let mut expected: Vec<&Message> = scenario.iter().collect();
        expected.sort_by_key(|m| m.absolute_deadline());
        let expected: Vec<u64> = expected.iter().map(|m| m.id.0).collect();
        let got: Vec<u64> = deliveries.iter().map(|(id, _)| id.0).collect();
        if got != expected {
            report.findings.push(Finding {
                scenario_index: index,
                violation: Violation::EdfOrderViolation { got, expected },
            });
        }
    }
}

/// The seeded adversarial fault plan for one scenario: one corrupted
/// slot, one erasure attempt, and exactly one station crash (station,
/// instant and outage length all seed-derived), placed in the opening
/// slots where the small scopes do their tree searches.
pub fn adversarial_plan(seed: u64, scenario_index: usize, stations: u32) -> FaultPlan {
    let base = fault_seed(seed, scenario_index as u64);
    let pick = |lane: u64, modulus: u64| derive_seed(base, lane) % modulus;
    FaultPlan::from_events(vec![
        FaultEvent {
            slot: pick(0, 8),
            kind: FaultKind::CorruptSlot,
        },
        FaultEvent {
            slot: pick(1, 12),
            kind: FaultKind::EraseFrame,
        },
        FaultEvent {
            slot: 2 + pick(2, 8),
            kind: FaultKind::Crash {
                station: pick(3, u64::from(stations)) as u32,
                down_slots: 4 + pick(4, 8),
            },
        },
    ])
}

/// Checks every scenario in the scope under a seeded adversarial fault
/// plan (a fresh plan per scenario, see [`adversarial_plan`]).
pub fn check_scope_with_faults(
    scope: &Scope,
    slot_budget: u64,
    mode: CollisionMode,
    seed: u64,
) -> FaultCheckReport {
    let mut report = FaultCheckReport::default();
    for (index, scenario) in scope.scenarios().enumerate() {
        report.scenarios += 1;
        let plan = adversarial_plan(seed, index, scope.stations);
        check_scenario_with_faults(
            scope.stations,
            index,
            &scenario,
            slot_budget,
            mode,
            &plan,
            &mut report,
        );
    }
    report
}

/// Checks a single scenario under an explicit fault plan.
///
/// Mirrors the engine's fault handling exactly: restarts are processed
/// before crashes at each slot ordinal, crashed stations are fenced (no
/// deliver/poll/observe; their arrivals are lost), and channel faults are
/// applied to the resolved observation via [`FaultPlan::apply`].
pub fn check_scenario_with_faults(
    z: u32,
    index: usize,
    scenario: &[Message],
    slot_budget: u64,
    mode: CollisionMode,
    plan: &FaultPlan,
    report: &mut FaultCheckReport,
) {
    let (config, allocation, medium) = config(z, mode);
    let mut stations: Vec<DdcrStation> = (0..z)
        .map(|i| {
            DdcrStation::new(
                ddcr_sim::SourceId(i),
                config,
                allocation.clone(),
                medium.overhead_bits,
            )
            .expect("station")
        })
        .collect();
    let mut arrivals = scenario.to_vec();
    arrivals.sort_by_key(|m| (m.arrival, m.id));

    let mut deliveries: Vec<(MessageId, Ticks)> = Vec::new();
    let mut lost: Vec<MessageId> = Vec::new();
    // Restart ordinal per crashed station, and (restart step, restart
    // time) per station currently resynchronizing.
    let mut down: Vec<Option<u64>> = vec![None; z as usize];
    let mut resyncing: Vec<Option<(u64, Ticks)>> = vec![None; z as usize];
    let mut now = Ticks::ZERO;
    let mut next = 0usize;
    let mut step = 0u64;
    let mut diverged = false;
    loop {
        // Fault transitions at this ordinal: restarts first, then crashes
        // (same order as the engine).
        for i in 0..stations.len() {
            if down[i].is_some_and(|at| at <= step) {
                down[i] = None;
                stations[i].restart(now);
                resyncing[i] = Some((step, now));
            }
        }
        for (station, down_slots) in plan.crashes_at(step) {
            let i = station as usize;
            if i < stations.len() && down[i].is_none() {
                report.crashes += 1;
                lost.extend(stations[i].crash(now).into_iter().map(|m| m.id));
                down[i] = Some(step + down_slots.max(1));
                resyncing[i] = None;
            }
        }
        if next >= arrivals.len() && stations.iter().all(|s| s.backlog() == 0) {
            break;
        }
        if step >= slot_budget {
            // Timed out under faults. Attribute: if the same scenario
            // verifies cleanly fault-free, the injected faults caused the
            // timeout (typically a resyncing station starved of epoch
            // anchors by channel silence); otherwise it is a real bug.
            let mut fault_free = CheckReport::default();
            check_scenario(z, index, scenario, slot_budget, mode, &mut fault_free);
            if fault_free.clean() {
                report.attributable_timeouts += 1;
            } else {
                report.findings.push(Finding {
                    scenario_index: index,
                    violation: Violation::NotDrained {
                        backlog: stations.iter().map(|s| s.backlog()).sum(),
                    },
                });
            }
            return;
        }
        while next < arrivals.len() && arrivals[next].arrival <= now {
            let m = arrivals[next];
            let i = m.source.0 as usize;
            if down[i].is_some() {
                lost.push(m.id); // its network module is dead
            } else {
                stations[i].deliver(m);
            }
            next += 1;
        }
        let frames: Vec<Frame> = stations
            .iter_mut()
            .enumerate()
            .filter(|(i, _)| down[*i].is_none())
            .filter_map(|(_, s)| match s.poll(now) {
                Action::Transmit(f) => Some(f),
                Action::Idle => None,
            })
            .collect();
        let (obs, advance) = medium.resolve(&frames);
        let (obs, advance, _slot_faults) =
            plan.apply(step, Ticks(medium.slot_ticks), obs, advance);
        let next_free = now + advance;
        match obs {
            Observation::Busy(f)
            | Observation::Collision {
                survivor: Some(f), ..
            } => deliveries.push((f.message.id, next_free)),
            _ => {}
        }
        for (i, s) in stations.iter_mut().enumerate() {
            if down[i].is_none() {
                s.observe(now, next_free, &obs);
            }
        }
        // Healing: a resyncing station either rejoined this slot, or must
        // have if the slot carried a post-restart epoch anchor (the exact
        // rule the protocol's resync mode implements).
        let anchor = match obs {
            Observation::Busy(f)
            | Observation::Collision {
                survivor: Some(f), ..
            } => f.epoch,
            _ => None,
        };
        for i in 0..stations.len() {
            let Some((restart_step, restart_at)) = resyncing[i] else {
                continue;
            };
            if stations[i].is_synced() {
                report.rejoins += 1;
                report.max_heal_slots = report.max_heal_slots.max(step - restart_step + 1);
                resyncing[i] = None;
            } else if anchor.is_some_and(|stamp| stamp.start >= restart_at) {
                report.findings.push(Finding {
                    scenario_index: index,
                    violation: Violation::UnhealedRestart {
                        station: i as u32,
                        step,
                    },
                });
                resyncing[i] = None; // report once
            }
        }
        // Divergence among replicas claiming to be synchronized; crashed
        // and resyncing stations are expected to lag.
        if !diverged {
            let digests: Vec<String> = stations
                .iter()
                .enumerate()
                .filter(|(i, s)| down[*i].is_none() && s.is_synced())
                .map(|(_, s)| s.shared_state_digest())
                .collect();
            if digests.windows(2).any(|w| w[0] != w[1]) {
                report.findings.push(Finding {
                    scenario_index: index,
                    violation: Violation::ReplicaDivergence { step },
                });
                diverged = true;
            }
        }
        now = next_free;
        step += 1;
    }

    // Safety under faults: deliveries unique, scheduled, and never of a
    // message recorded lost.
    let lost_set: std::collections::HashSet<MessageId> = lost.iter().copied().collect();
    let mut seen = std::collections::HashSet::new();
    for &(id, _) in &deliveries {
        let scheduled = scenario.iter().any(|m| m.id == id);
        if !seen.insert(id) || !scheduled {
            report.findings.push(Finding {
                scenario_index: index,
                violation: Violation::DuplicateOrInvented { id },
            });
        } else if lost_set.contains(&id) {
            report.findings.push(Finding {
                scenario_index: index,
                violation: Violation::LostMessageDelivered { id },
            });
        }
    }
    // Completeness: the loop only exits drained, so every scheduled
    // message must be accounted for — delivered or lost in a crash.
    for m in scenario {
        if !seen.contains(&m.id) && !lost_set.contains(&m.id) {
            report.findings.push(Finding {
                scenario_index: index,
                violation: Violation::NotDrained { backlog: 1 },
            });
        }
    }
    // Causality holds under faults too.
    for &(id, completed) in &deliveries {
        let Some(msg) = scenario.iter().find(|m| m.id == id) else {
            continue;
        };
        if completed < causality_bound(&medium, msg) {
            report.findings.push(Finding {
                scenario_index: index,
                violation: Violation::CausalityViolation { id },
            });
        }
    }
}

/// The seeded membership plan for one scenario: one station leaves in the
/// opening slots and rejoins a few slots later — the leave reclaims its
/// indices (its queue is lost), the rejoin exercises the reserved-window
/// resynchronization handshake while the survivors' traffic is in flight.
///
/// Seed lanes 5–7 are used (the adversarial fault plan uses 0–4), so the
/// same `(seed, scenario_index)` pair yields an independent-looking but
/// fully reproducible churn schedule alongside the fault schedule.
pub fn membership_plan(seed: u64, scenario_index: usize, stations: u32) -> MembershipPlan {
    let base = fault_seed(seed, scenario_index as u64);
    let pick = |lane: u64, modulus: u64| derive_seed(base, lane) % modulus;
    let station = pick(5, u64::from(stations)) as u32;
    let leave = 1 + pick(6, 6);
    let rejoin = leave + 2 + pick(7, 6);
    MembershipPlan::leave_then_rejoin(station, leave, rejoin)
}

/// Checks every scenario in the scope under a seeded membership plan
/// (one leave/rejoin per scenario, see [`membership_plan`]) interleaved
/// with the seeded adversarial fault plan of [`check_scope_with_faults`].
///
/// On top of the fault-mode safety properties, every delivery of a
/// scheduled message is checked against its absolute deadline
/// ([`Violation::DeadlineMiss`]): membership transitions may lose the
/// leaver's own queue, but must never push a surviving admitted flow past
/// its deadline.
pub fn check_scope_with_membership(
    scope: &Scope,
    slot_budget: u64,
    mode: CollisionMode,
    seed: u64,
) -> MembershipCheckReport {
    let mut report = MembershipCheckReport::default();
    for (index, scenario) in scope.scenarios().enumerate() {
        report.scenarios += 1;
        let faults = adversarial_plan(seed, index, scope.stations);
        let membership = membership_plan(seed, index, scope.stations);
        check_scenario_with_membership(
            scope.stations,
            index,
            &scenario,
            slot_budget,
            mode,
            &faults,
            &membership,
            &mut report,
        );
    }
    report
}

/// Checks a single scenario under explicit fault and membership plans.
///
/// Mirrors the engine's transition ordering exactly: membership events
/// first (joins admit an absent station receive-only via `restart`;
/// leaves fence the station and record its queue lost), then fault
/// restarts, then crashes. An absent station is fenced completely — it
/// neither crashes, restarts, polls, observes, nor receives arrivals
/// (they are lost, exactly as for a crashed station).
#[allow(clippy::too_many_arguments)]
pub fn check_scenario_with_membership(
    z: u32,
    index: usize,
    scenario: &[Message],
    slot_budget: u64,
    mode: CollisionMode,
    plan: &FaultPlan,
    membership: &MembershipPlan,
    report: &mut MembershipCheckReport,
) {
    let (config, allocation, medium) = config(z, mode);
    let mut stations: Vec<DdcrStation> = (0..z)
        .map(|i| {
            DdcrStation::new(
                ddcr_sim::SourceId(i),
                config,
                allocation.clone(),
                medium.overhead_bits,
            )
            .expect("station")
        })
        .collect();
    let mut arrivals = scenario.to_vec();
    arrivals.sort_by_key(|m| (m.arrival, m.id));

    let mut deliveries: Vec<(MessageId, Ticks)> = Vec::new();
    let mut lost: Vec<MessageId> = Vec::new();
    let mut down: Vec<Option<u64>> = vec![None; z as usize];
    let mut absent: Vec<bool> = vec![false; z as usize];
    for &s in membership.initially_absent() {
        if (s as usize) < absent.len() {
            absent[s as usize] = true;
        }
    }
    let mut resyncing: Vec<Option<(u64, Ticks)>> = vec![None; z as usize];
    let mut now = Ticks::ZERO;
    let mut next = 0usize;
    let mut step = 0u64;
    let mut diverged = false;
    loop {
        // Membership transitions first, then fault restarts, then crashes
        // (the engine's ordering).
        for event in membership.events_at(step) {
            let i = event.change.station() as usize;
            if i >= stations.len() {
                continue;
            }
            match event.change {
                MembershipChange::Join { .. } if absent[i] => {
                    absent[i] = false;
                    down[i] = None;
                    stations[i].restart(now);
                    resyncing[i] = Some((step, now));
                    report.joins += 1;
                }
                MembershipChange::Leave { .. } if !absent[i] => {
                    absent[i] = true;
                    lost.extend(stations[i].crash(now).into_iter().map(|m| m.id));
                    down[i] = None;
                    resyncing[i] = None;
                    report.leaves += 1;
                }
                _ => {} // join while present / leave while absent: no-op
            }
        }
        for i in 0..stations.len() {
            if !absent[i] && down[i].is_some_and(|at| at <= step) {
                down[i] = None;
                stations[i].restart(now);
                resyncing[i] = Some((step, now));
            }
        }
        for (station, down_slots) in plan.crashes_at(step) {
            let i = station as usize;
            if i < stations.len() && !absent[i] && down[i].is_none() {
                report.crashes += 1;
                lost.extend(stations[i].crash(now).into_iter().map(|m| m.id));
                down[i] = Some(step + down_slots.max(1));
                resyncing[i] = None;
            }
        }
        if next >= arrivals.len() && stations.iter().all(|s| s.backlog() == 0) {
            break;
        }
        if step >= slot_budget {
            // Attribute the timeout: clean without churn and faults means
            // they caused it; otherwise it is a real bug.
            let mut bare = CheckReport::default();
            check_scenario(z, index, scenario, slot_budget, mode, &mut bare);
            if bare.clean() {
                report.attributable_timeouts += 1;
            } else {
                report.findings.push(Finding {
                    scenario_index: index,
                    violation: Violation::NotDrained {
                        backlog: stations.iter().map(|s| s.backlog()).sum(),
                    },
                });
            }
            return;
        }
        while next < arrivals.len() && arrivals[next].arrival <= now {
            let m = arrivals[next];
            let i = m.source.0 as usize;
            if absent[i] || down[i].is_some() {
                lost.push(m.id); // its network module is dead or detached
            } else {
                stations[i].deliver(m);
            }
            next += 1;
        }
        let frames: Vec<Frame> = stations
            .iter_mut()
            .enumerate()
            .filter(|(i, _)| !absent[*i] && down[*i].is_none())
            .filter_map(|(_, s)| match s.poll(now) {
                Action::Transmit(f) => Some(f),
                Action::Idle => None,
            })
            .collect();
        let (obs, advance) = medium.resolve(&frames);
        let (obs, advance, _slot_faults) =
            plan.apply(step, Ticks(medium.slot_ticks), obs, advance);
        let next_free = now + advance;
        match obs {
            Observation::Busy(f)
            | Observation::Collision {
                survivor: Some(f), ..
            } => deliveries.push((f.message.id, next_free)),
            _ => {}
        }
        for (i, s) in stations.iter_mut().enumerate() {
            if !absent[i] && down[i].is_none() {
                s.observe(now, next_free, &obs);
            }
        }
        // Healing: a resyncing (restarted or freshly joined) station must
        // sync the slot a post-restart epoch anchor appears.
        let anchor = match obs {
            Observation::Busy(f)
            | Observation::Collision {
                survivor: Some(f), ..
            } => f.epoch,
            _ => None,
        };
        for i in 0..stations.len() {
            let Some((restart_step, restart_at)) = resyncing[i] else {
                continue;
            };
            if stations[i].is_synced() {
                report.rejoins += 1;
                report.max_heal_slots = report.max_heal_slots.max(step - restart_step + 1);
                resyncing[i] = None;
            } else if anchor.is_some_and(|stamp| stamp.start >= restart_at) {
                report.findings.push(Finding {
                    scenario_index: index,
                    violation: Violation::UnhealedRestart {
                        station: i as u32,
                        step,
                    },
                });
                resyncing[i] = None; // report once
            }
        }
        // Divergence among present, synced replicas only.
        if !diverged {
            let digests: Vec<String> = stations
                .iter()
                .enumerate()
                .filter(|(i, s)| !absent[*i] && down[*i].is_none() && s.is_synced())
                .map(|(_, s)| s.shared_state_digest())
                .collect();
            if digests.windows(2).any(|w| w[0] != w[1]) {
                report.findings.push(Finding {
                    scenario_index: index,
                    violation: Violation::ReplicaDivergence { step },
                });
                diverged = true;
            }
        }
        now = next_free;
        step += 1;
    }

    // Safety: deliveries unique, scheduled, never of a lost message.
    let lost_set: std::collections::HashSet<MessageId> = lost.iter().copied().collect();
    let mut seen = std::collections::HashSet::new();
    for &(id, _) in &deliveries {
        let scheduled = scenario.iter().any(|m| m.id == id);
        if !seen.insert(id) || !scheduled {
            report.findings.push(Finding {
                scenario_index: index,
                violation: Violation::DuplicateOrInvented { id },
            });
        } else if lost_set.contains(&id) {
            report.findings.push(Finding {
                scenario_index: index,
                violation: Violation::LostMessageDelivered { id },
            });
        }
    }
    // Completeness: delivered or lost (in a crash or a leave), never
    // silently dropped.
    for m in scenario {
        if !seen.contains(&m.id) && !lost_set.contains(&m.id) {
            report.findings.push(Finding {
                scenario_index: index,
                violation: Violation::NotDrained { backlog: 1 },
            });
        }
    }
    // Causality and deadlines: a delivery of a surviving admitted flow
    // completes no earlier than physics allows and no later than its
    // absolute deadline — churn must not manufacture a miss.
    for &(id, completed) in &deliveries {
        let Some(msg) = scenario.iter().find(|m| m.id == id) else {
            continue;
        };
        if completed < causality_bound(&medium, msg) {
            report.findings.push(Finding {
                scenario_index: index,
                violation: Violation::CausalityViolation { id },
            });
        }
        report.deadline_checked += 1;
        if completed > msg.absolute_deadline() {
            report.findings.push(Finding {
                scenario_index: index,
                violation: Violation::DeadlineMiss {
                    id,
                    completed,
                    deadline: msg.absolute_deadline(),
                },
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scope_verifies_clean() {
        let scope = Scope::small();
        let report = check_scope(&scope, 3_000);
        assert_eq!(report.scenarios, scope.scenario_count());
        assert!(
            report.clean(),
            "violations: {:?}",
            &report.findings[..report.findings.len().min(5)]
        );
        assert!(report.edf_checked > 0, "EDF check never applied");
    }

    #[test]
    fn small_scope_verifies_clean_under_arbitration() {
        let scope = Scope::small();
        let report = check_scope_with_mode(&scope, 3_000, CollisionMode::Arbitrating);
        assert_eq!(report.scenarios, scope.scenario_count());
        assert!(
            report.clean(),
            "violations: {:?}",
            &report.findings[..report.findings.len().min(5)]
        );
        // The strict-EDF check is destructive-only.
        assert_eq!(report.edf_checked, 0);
    }

    #[test]
    fn single_scenario_replay_matches() {
        let scope = Scope::small();
        let mut report = CheckReport::default();
        check_scenario(
            scope.stations,
            7,
            &scope.scenario(7),
            3_000,
            CollisionMode::Destructive,
            &mut report,
        );
        assert!(report.clean());
    }

    #[test]
    fn budget_exhaustion_reports_not_drained() {
        // One slot is never enough to drain anything.
        let scope = Scope::small();
        let mut report = CheckReport::default();
        check_scenario(
            scope.stations,
            0,
            &scope.scenario(0),
            1,
            CollisionMode::Destructive,
            &mut report,
        );
        assert!(matches!(
            report.findings[0].violation,
            Violation::NotDrained { .. }
        ));
    }

    #[test]
    fn causality_bound_is_arrival_plus_wire_bits() {
        // Pin: the bound is routed through MediumConfig::wire_bits — the
        // same l'(m) = l(m) + overhead the engine charges the channel —
        // not an inline re-derivation that could drift.
        let medium = MediumConfig::ethernet();
        let m = Message {
            id: MessageId(0),
            source: ddcr_sim::SourceId(0),
            class: ddcr_sim::ClassId(0),
            bits: 2_000,
            arrival: Ticks(700),
            deadline: Ticks(400_000),
        };
        assert_eq!(
            causality_bound(&medium, &m),
            Ticks(700 + medium.wire_bits(2_000))
        );
        assert_eq!(causality_bound(&medium, &m), Ticks(700 + 2_000 + 26 * 8));
    }

    #[test]
    fn arbitrated_survivors_count_as_deliveries() {
        // Two simultaneous arrivals at distinct sources collide under
        // arbitration; the survivor's frame goes through. If the checker
        // dropped survivor deliveries it would report these scenarios
        // undrained (the winning source dequeues on the survival).
        let scope = Scope {
            stations: 2,
            messages: 2,
            arrival_choices: vec![0],
            deadline_choices: vec![400_000],
            bits_choices: vec![2_000],
        };
        let report = check_scope_with_mode(&scope, 3_000, CollisionMode::Arbitrating);
        assert!(report.clean(), "violations: {:?}", report.findings);
    }

    #[test]
    fn adversarial_plans_are_seeded_and_always_crash_once() {
        let a = adversarial_plan(42, 17, 2);
        let b = adversarial_plan(42, 17, 2);
        assert_eq!(a, b);
        let c = adversarial_plan(43, 17, 2);
        assert_ne!(a, c);
        let crashes: Vec<_> = a
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Crash { .. }))
            .collect();
        assert_eq!(crashes.len(), 1);
    }

    #[test]
    fn small_scope_is_safe_under_adversarial_faults() {
        let scope = Scope::small();
        let report = check_scope_with_faults(&scope, 3_000, CollisionMode::Destructive, 42);
        assert_eq!(report.scenarios, scope.scenario_count());
        assert!(
            report.clean(),
            "violations: {:?}",
            &report.findings[..report.findings.len().min(5)]
        );
        assert!(report.crashes > 0, "the adversarial plans never crashed");
        assert!(report.rejoins > 0, "no station ever resynchronized");
        assert!(
            report.max_heal_slots > 0 && report.max_heal_slots < 3_000,
            "heal time unbounded: {}",
            report.max_heal_slots
        );
    }

    #[test]
    fn membership_plans_are_seeded_and_deterministic() {
        let a = membership_plan(42, 17, 2);
        let b = membership_plan(42, 17, 2);
        assert_eq!(a, b);
        assert_ne!(a, membership_plan(43, 17, 2));
        // Always exactly one leave followed by one rejoin of that station.
        assert_eq!(a.len(), 2);
        let events = a.events();
        assert!(matches!(events[0].change, MembershipChange::Leave { .. }));
        assert!(matches!(events[1].change, MembershipChange::Join { .. }));
        assert_eq!(events[0].change.station(), events[1].change.station());
        assert!(events[0].slot < events[1].slot);
    }

    #[test]
    fn small_scope_is_safe_under_membership_churn_and_faults() {
        let scope = Scope::small();
        let report =
            check_scope_with_membership(&scope, 3_000, CollisionMode::Destructive, 42);
        assert_eq!(report.scenarios, scope.scenario_count());
        assert!(
            report.clean(),
            "violations: {:?}",
            &report.findings[..report.findings.len().min(5)]
        );
        assert!(report.leaves > 0, "no station ever left");
        assert!(report.joins > 0, "no station ever rejoined the fabric");
        assert!(report.crashes > 0, "the fault plans never crashed");
        assert!(report.rejoins > 0, "no station ever resynchronized");
        assert!(
            report.deadline_checked > 0,
            "the deadline-miss check never applied"
        );
    }

    #[test]
    fn membership_checker_holds_under_arbitration_too() {
        let scope = Scope::small();
        let report =
            check_scope_with_membership(&scope, 3_000, CollisionMode::Arbitrating, 7);
        assert!(
            report.clean(),
            "violations: {:?}",
            &report.findings[..report.findings.len().min(5)]
        );
    }

    #[test]
    fn empty_membership_plan_reduces_to_the_fault_checker() {
        // With MembershipPlan::none() the membership-aware loop must reach
        // the same verdict as the fault-aware loop on every scenario.
        let scope = Scope::small();
        let mut with_membership = MembershipCheckReport::default();
        let mut faults_only = FaultCheckReport::default();
        for (index, scenario) in scope.scenarios().enumerate() {
            with_membership.scenarios += 1;
            faults_only.scenarios += 1;
            let plan = adversarial_plan(42, index, scope.stations);
            check_scenario_with_membership(
                scope.stations,
                index,
                &scenario,
                3_000,
                CollisionMode::Destructive,
                &plan,
                &MembershipPlan::none(),
                &mut with_membership,
            );
            check_scenario_with_faults(
                scope.stations,
                index,
                &scenario,
                3_000,
                CollisionMode::Destructive,
                &plan,
                &mut faults_only,
            );
        }
        assert_eq!(with_membership.findings, faults_only.findings);
        assert_eq!(with_membership.crashes, faults_only.crashes);
        assert_eq!(with_membership.rejoins, faults_only.rejoins);
        assert_eq!(with_membership.max_heal_slots, faults_only.max_heal_slots);
        assert_eq!(with_membership.joins, 0);
        assert_eq!(with_membership.leaves, 0);
    }

    #[test]
    fn initially_absent_station_loses_its_arrivals() {
        // A scenario whose messages all source from station 1 while
        // station 1 never joins: everything is lost, nothing delivered,
        // and the checker accounts for every message without findings.
        let scenario = vec![
            Message {
                id: MessageId(0),
                source: ddcr_sim::SourceId(1),
                class: ddcr_sim::ClassId(0),
                bits: 2_000,
                arrival: Ticks(0),
                deadline: Ticks(400_000),
            },
            Message {
                id: MessageId(1),
                source: ddcr_sim::SourceId(1),
                class: ddcr_sim::ClassId(0),
                bits: 2_000,
                arrival: Ticks(700),
                deadline: Ticks(400_000),
            },
        ];
        let membership = MembershipPlan::from_events(vec![1], Vec::new());
        let mut report = MembershipCheckReport::default();
        check_scenario_with_membership(
            2,
            0,
            &scenario,
            3_000,
            CollisionMode::Destructive,
            &FaultPlan::none(),
            &membership,
            &mut report,
        );
        assert!(report.clean(), "{:?}", report.findings);
        assert_eq!(report.deadline_checked, 0, "nothing should be delivered");
    }

    #[test]
    fn empty_fault_plan_matches_faultless_checker() {
        // Under FaultPlan::none() the fault-aware loop must reach the
        // same verdict as the plain checker on every scenario.
        let scope = Scope::small();
        let plan = FaultPlan::none();
        let mut fault_report = FaultCheckReport::default();
        for (index, scenario) in scope.scenarios().enumerate() {
            fault_report.scenarios += 1;
            check_scenario_with_faults(
                scope.stations,
                index,
                &scenario,
                3_000,
                CollisionMode::Destructive,
                &plan,
                &mut fault_report,
            );
        }
        assert!(fault_report.clean(), "{:?}", fault_report.findings);
        assert_eq!(fault_report.crashes, 0);
        assert_eq!(fault_report.attributable_timeouts, 0);
    }
}
