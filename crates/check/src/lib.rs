//! # ddcr-check — bounded exhaustive verification of CSMA/DDCR
//!
//! The paper's title promises *correctness proofs*; its §4 proves the
//! analysis (P1/P2), while the protocol itself is described informally.
//! This crate closes the gap with **small-scope model checking**: it
//! enumerates *every* scenario in a finite universe — every placement of
//! every message over stations, arrival instants, deadlines and sizes —
//! drives the real [`ddcr_core::DdcrStation`] replicas through each one,
//! and checks the properties the paper claims:
//!
//! * safety-adjacent structure (exactly-once delivery, causality),
//! * liveness (every scenario drains),
//! * replica consistency (all stations agree on shared protocol state at
//!   every slot), and
//! * NP-EDF emulation (delivery in deadline order whenever the scenario
//!   qualifies for a strict check).
//!
//! A clean [`CheckReport`] is an exhaustive proof over the scope — no
//! sampling, no randomness. The default scopes cover tens of thousands of
//! scenarios in seconds; violations carry a replayable scenario index.
//!
//! ```
//! use ddcr_check::{check_scope, Scope};
//!
//! let scope = Scope {
//!     stations: 2,
//!     messages: 2,
//!     arrival_choices: vec![0, 700],
//!     deadline_choices: vec![400_000, 1_600_000],
//!     bits_choices: vec![2_000],
//! };
//! let report = check_scope(&scope, 2_000);
//! assert!(report.clean());
//! assert_eq!(report.scenarios, 64); // exhaustive: 8 per-message choices²
//! ```

#![warn(missing_docs)]

mod checker;
mod scope;

pub use checker::{
    adversarial_plan, check_scenario, check_scenario_with_faults, check_scenario_with_membership,
    check_scope, check_scope_with_faults, check_scope_with_membership, check_scope_with_mode,
    membership_plan, CheckReport, FaultCheckReport, Finding, MembershipCheckReport, Violation,
};
pub use scope::Scope;
