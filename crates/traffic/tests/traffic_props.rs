//! Property-based tests of the workload generators: the density-respecting
//! processes never exceed their declared (a, w) bound, schedules are
//! deterministic in their seeds, and the validator itself is sound.

use ddcr_sim::{ClassId, SourceId, Ticks};
use ddcr_traffic::arrival::{ArrivalProcess, BoundedRandom, PeakLoad, Periodic};
use ddcr_traffic::{validate, DensityBound, MessageClass, MessageSet, ScheduleBuilder};
use proptest::prelude::*;

fn class(a: u64, w: u64, bits: u64) -> MessageClass {
    MessageClass {
        id: ClassId(0),
        name: "prop".into(),
        source: SourceId(0),
        bits,
        deadline: Ticks(10 * w),
        density: DensityBound::new(a, Ticks(w)).unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Peak load and zero-jitter periodic arrivals always respect the
    /// density bound, for any (a, w).
    #[test]
    fn deterministic_processes_respect_bound(
        a in 1u64..8,
        w in 100u64..100_000,
        horizon_mult in 1u64..6,
    ) {
        let c = class(a, w, 1_000);
        let horizon = Ticks(w * horizon_mult + 1);
        for times in [
            PeakLoad.arrival_times(&c, horizon),
            Periodic::new(Ticks::ZERO).arrival_times(&c, horizon),
            Periodic::new(Ticks(w / 3)).arrival_times(&c, horizon),
        ] {
            prop_assert!(validate::check_density(&times, c.density).is_ok());
            prop_assert!(times.iter().all(|&t| t < horizon));
            prop_assert!(times.windows(2).all(|p| p[0] <= p[1]));
        }
    }

    /// Bounded-random traffic respects the bound at every intensity and
    /// seed.
    #[test]
    fn bounded_random_respects_bound(
        a in 1u64..6,
        w in 1_000u64..50_000,
        intensity in 0.05f64..=1.0,
        seed in any::<u64>(),
    ) {
        let c = class(a, w, 1_000);
        let process = BoundedRandom::new(intensity, seed).unwrap();
        let times = process.arrival_times(&c, Ticks(w * 20));
        prop_assert!(
            validate::check_density(&times, c.density).is_ok(),
            "violation at a={a} w={w} intensity={intensity} seed={seed}"
        );
    }

    /// Peak load is the densest legal pattern: adding any single extra
    /// arrival to a saturated window violates the bound (validator
    /// soundness from the other side).
    #[test]
    fn peak_load_is_maximal(a in 1u64..6, w in 100u64..10_000) {
        let c = class(a, w, 1_000);
        let mut times = PeakLoad.arrival_times(&c, Ticks(3 * w));
        prop_assert!(validate::check_density(&times, c.density).is_ok());
        // Insert one more arrival inside the first window.
        times.push(Ticks(w / 2));
        times.sort_unstable();
        prop_assert!(validate::check_density(&times, c.density).is_err());
    }

    /// Schedules are pure functions of (set, process, horizon): same
    /// inputs, same output; ids dense from the starting id.
    #[test]
    fn schedules_are_deterministic(
        z in 1u32..5,
        a in 1u64..4,
        w in 1_000u64..20_000,
        seed in any::<u64>(),
    ) {
        let classes: Vec<MessageClass> = (0..z)
            .map(|s| MessageClass {
                id: ClassId(s),
                name: format!("c{s}"),
                source: SourceId(s),
                bits: 1_000,
                deadline: Ticks(5 * w),
                density: DensityBound::new(a, Ticks(w)).unwrap(),
            })
            .collect();
        let set = MessageSet::new(z, classes).unwrap();
        let horizon = Ticks(w * 10);
        let build = || {
            ScheduleBuilder::bounded_random(&set, 0.7, seed)
                .unwrap()
                .build(horizon)
                .unwrap()
        };
        let first = build();
        let second = build();
        prop_assert_eq!(&first, &second);
        for (i, m) in first.iter().enumerate() {
            prop_assert_eq!(m.id.0, i as u64);
        }
        prop_assert!(validate::check_schedule(&set, &first).is_ok());
    }

    /// The sliding-window validator agrees with a quadratic reference
    /// implementation.
    #[test]
    fn validator_matches_reference(
        times_raw in prop::collection::vec(0u64..5_000, 0..40),
        a in 1u64..5,
        w in 10u64..2_000,
    ) {
        let mut times: Vec<Ticks> = times_raw.into_iter().map(Ticks).collect();
        times.sort_unstable();
        let bound = DensityBound::new(a, Ticks(w)).unwrap();
        // Reference: for every arrival as window start, count arrivals in
        // [t, t + w).
        let reference_ok = times.iter().all(|&start| {
            let count = times
                .iter()
                .filter(|&&t| t >= start && t < start + Ticks(w))
                .count() as u64;
            count <= a
        });
        let fast_ok = validate::check_density(&times, bound).is_ok();
        prop_assert_eq!(fast_ok, reference_ok);
    }
}
