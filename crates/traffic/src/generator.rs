//! Schedule generation: turning a [`MessageSet`] plus arrival processes
//! into a concrete, id-allocated stream of [`Message`]s for the simulator.

use crate::arrival::{ArrivalProcess, BoundedRandom, PeakLoad, Periodic, Poisson};
use crate::class::MessageSet;
use crate::error::TrafficError;
use ddcr_sim::{ClassId, Message, MessageId, Ticks};
use std::collections::BTreeMap;

/// Builds a full arrival schedule for a message set, with per-class arrival
/// processes and a default for classes not explicitly configured.
///
/// # Examples
///
/// ```
/// use ddcr_sim::Ticks;
/// use ddcr_traffic::{scenario, ScheduleBuilder};
///
/// # fn main() -> Result<(), ddcr_traffic::TrafficError> {
/// let set = scenario::videoconference(4)?;
/// let schedule = ScheduleBuilder::peak_load(&set).build(Ticks(1_000_000))?;
/// assert!(!schedule.is_empty());
/// // Messages come out sorted by (arrival, id).
/// assert!(schedule.windows(2).all(|p| p[0].arrival <= p[1].arrival));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ScheduleBuilder<'a> {
    set: &'a MessageSet,
    default: Box<dyn ArrivalProcess>,
    overrides: BTreeMap<ClassId, Box<dyn ArrivalProcess>>,
    first_id: u64,
}

impl<'a> ScheduleBuilder<'a> {
    /// Every class driven by the given default process.
    pub fn new(set: &'a MessageSet, default: Box<dyn ArrivalProcess>) -> Self {
        ScheduleBuilder {
            set,
            default,
            overrides: BTreeMap::new(),
            first_id: 0,
        }
    }

    /// Adversarial peak-load traffic for every class (the pattern the
    /// feasibility conditions are proved against).
    pub fn peak_load(set: &'a MessageSet) -> Self {
        Self::new(set, Box::new(PeakLoad))
    }

    /// Zero-jitter periodic traffic, all classes phase-aligned at 0.
    pub fn periodic(set: &'a MessageSet) -> Self {
        Self::new(set, Box::new(Periodic::new(Ticks::ZERO)))
    }

    /// Density-respecting random traffic at the given intensity.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::InvalidProcess`] for intensities outside
    /// `(0, 1]`.
    pub fn bounded_random(
        set: &'a MessageSet,
        intensity: f64,
        seed: u64,
    ) -> Result<Self, TrafficError> {
        Ok(Self::new(set, Box::new(BoundedRandom::new(intensity, seed)?)))
    }

    /// Poisson traffic at `intensity` times each class's density rate
    /// (bound-violating by design; for baseline experiments).
    pub fn poisson(set: &'a MessageSet, intensity: f64, seed: u64) -> Self {
        Self::new(set, Box::new(Poisson { intensity, seed }))
    }

    /// Overrides the process for one class.
    pub fn with_class_process(
        mut self,
        class: ClassId,
        process: Box<dyn ArrivalProcess>,
    ) -> Self {
        self.overrides.insert(class, process);
        self
    }

    /// Sets the first [`MessageId`] to allocate (useful when concatenating
    /// schedules).
    pub fn starting_id(mut self, first: u64) -> Self {
        self.first_id = first;
        self
    }

    /// Generates the schedule over `[0, horizon)`, sorted by
    /// `(arrival, id)`, with globally unique ids in arrival order.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::InvalidProcess`] if an override references a
    /// class not in the set.
    pub fn build(&self, horizon: Ticks) -> Result<Vec<Message>, TrafficError> {
        for class in self.overrides.keys() {
            if self.set.class(*class).is_none() {
                return Err(TrafficError::InvalidProcess(format!(
                    "override for unknown class {class}"
                )));
            }
        }
        // (arrival, class index) pairs, then sort and allocate ids.
        let mut raw: Vec<(Ticks, usize)> = Vec::new();
        for (idx, class) in self.set.classes().iter().enumerate() {
            let process: &dyn ArrivalProcess = match self.overrides.get(&class.id) {
                Some(p) => p.as_ref(),
                None => self.default.as_ref(),
            };
            for t in process.arrival_times(class, horizon) {
                raw.push((t, idx));
            }
        }
        raw.sort_by_key(|&(t, idx)| (t, idx));
        let mut schedule = Vec::with_capacity(raw.len());
        for (offset, (arrival, idx)) in raw.into_iter().enumerate() {
            let class = &self.set.classes()[idx];
            schedule.push(Message {
                id: MessageId(self.first_id + offset as u64),
                source: class.source,
                class: class.id,
                bits: class.bits,
                arrival,
                deadline: class.deadline,
            });
        }
        Ok(schedule)
    }
}

/// Offered load of a schedule over a horizon: transmitted bits (Data-Link,
/// before overhead) divided by horizon ticks — the fraction of a
/// 1 bit/tick channel the workload demands.
pub fn offered_load(schedule: &[Message], horizon: Ticks) -> f64 {
    if horizon == Ticks::ZERO {
        return 0.0;
    }
    schedule.iter().map(|m| m.bits as f64).sum::<f64>() / horizon.as_u64() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::{DensityBound, MessageClass};
    use crate::validate::check_schedule;
    use ddcr_sim::SourceId;

    fn two_class_set() -> MessageSet {
        MessageSet::new(
            2,
            vec![
                MessageClass {
                    id: ClassId(0),
                    name: "a".into(),
                    source: SourceId(0),
                    bits: 1000,
                    deadline: Ticks(50_000),
                    density: DensityBound::new(2, Ticks(10_000)).unwrap(),
                },
                MessageClass {
                    id: ClassId(1),
                    name: "b".into(),
                    source: SourceId(1),
                    bits: 2000,
                    deadline: Ticks(80_000),
                    density: DensityBound::new(1, Ticks(20_000)).unwrap(),
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn peak_load_schedule_is_sorted_and_valid() {
        let set = two_class_set();
        let schedule = ScheduleBuilder::peak_load(&set).build(Ticks(100_000)).unwrap();
        assert!(schedule.windows(2).all(|p| (p[0].arrival, p[0].id) <= (p[1].arrival, p[1].id)));
        assert!(check_schedule(&set, &schedule).is_ok());
        // Class 0: 2 per 10k over 100k = 20; class 1: 1 per 20k = 5.
        assert_eq!(schedule.len(), 25);
    }

    #[test]
    fn ids_are_unique_and_dense() {
        let set = two_class_set();
        let schedule = ScheduleBuilder::periodic(&set).build(Ticks(100_000)).unwrap();
        for (i, m) in schedule.iter().enumerate() {
            assert_eq!(m.id, MessageId(i as u64));
        }
    }

    #[test]
    fn starting_id_offsets_allocation() {
        let set = two_class_set();
        let schedule = ScheduleBuilder::peak_load(&set)
            .starting_id(100)
            .build(Ticks(20_000))
            .unwrap();
        assert_eq!(schedule[0].id, MessageId(100));
    }

    #[test]
    fn class_override_changes_one_class_only() {
        let set = two_class_set();
        let schedule = ScheduleBuilder::peak_load(&set)
            .with_class_process(ClassId(1), Box::new(crate::arrival::Periodic::new(Ticks(7))))
            .build(Ticks(40_000))
            .unwrap();
        let class1: Vec<_> = schedule.iter().filter(|m| m.class == ClassId(1)).collect();
        assert_eq!(class1[0].arrival, Ticks(7));
    }

    #[test]
    fn override_for_unknown_class_rejected() {
        let set = two_class_set();
        let err = ScheduleBuilder::peak_load(&set)
            .with_class_process(ClassId(9), Box::new(PeakLoad))
            .build(Ticks(1000))
            .unwrap_err();
        assert!(matches!(err, TrafficError::InvalidProcess(_)));
    }

    #[test]
    fn offered_load_counts_bits() {
        let set = two_class_set();
        let schedule = ScheduleBuilder::peak_load(&set).build(Ticks(100_000)).unwrap();
        // 20 × 1000 + 5 × 2000 = 30_000 bits over 100_000 ticks.
        assert!((offered_load(&schedule, Ticks(100_000)) - 0.3).abs() < 1e-12);
        assert_eq!(offered_load(&schedule, Ticks::ZERO), 0.0);
    }

    #[test]
    fn message_fields_copied_from_class() {
        let set = two_class_set();
        let schedule = ScheduleBuilder::peak_load(&set).build(Ticks(10_000)).unwrap();
        let m = schedule.iter().find(|m| m.class == ClassId(0)).unwrap();
        assert_eq!(m.bits, 1000);
        assert_eq!(m.deadline, Ticks(50_000));
        assert_eq!(m.source, SourceId(0));
    }
}
