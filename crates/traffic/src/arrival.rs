//! Arrival processes: adversarial peak-load, periodic, bounded-random and
//! Poisson generators for message classes.
//!
//! The HRTDM arrival model is *unimodal arbitrary*: the only promise a class
//! makes is its density bound `a/w`. The feasibility conditions of §4.3 are
//! proved against the worst adversary within that bound, which
//! [`PeakLoad`] realises: bursts of `a` simultaneous arrivals every `w`
//! ticks starting at the critical instant 0 (all classes phase-aligned).
//! The other processes generate friendlier traffic — periodic with optional
//! jitter, density-respecting random, and (deliberately bound-violating)
//! Poisson for baseline comparisons.

use crate::class::MessageClass;
use crate::error::TrafficError;
use ddcr_sim::rng::{derive_seed, seeded_rng};
use ddcr_sim::Ticks;
use rand::Rng;

/// An arrival process: generates the arrival instants of one class over
/// `[0, horizon)`.
///
/// Implementations must be deterministic functions of `(self, class,
/// horizon)`; stochastic processes carry an explicit seed.
pub trait ArrivalProcess: std::fmt::Debug {
    /// Arrival instants, sorted non-decreasing, all `< horizon`.
    fn arrival_times(&self, class: &MessageClass, horizon: Ticks) -> Vec<Ticks>;
}

/// The adversarial peak-load process: `a` simultaneous arrivals at
/// `0, w, 2w, …` — the strongest arrival pattern permitted by the class's
/// density bound, and the pattern the feasibility conditions assume
/// ("peak-load conditions", §4.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeakLoad;

impl ArrivalProcess for PeakLoad {
    fn arrival_times(&self, class: &MessageClass, horizon: Ticks) -> Vec<Ticks> {
        let mut times = Vec::new();
        let w = class.density.w;
        let mut t = Ticks::ZERO;
        while t < horizon {
            for _ in 0..class.density.a {
                times.push(t);
            }
            t += w;
        }
        times
    }
}

/// Periodic arrivals with period `w/a`, a fixed phase offset and optional
/// bounded jitter (each instant independently displaced by up to
/// `jitter` ticks, seeded).
///
/// With zero jitter the process trivially respects the density bound; with
/// jitter it may locally exceed it — which is precisely the "transit times
/// are inevitably variable" phenomenon of §2.2 that motivates the unimodal
/// arbitrary model. Use [`crate::validate::check_density`] to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Periodic {
    /// Phase of the first arrival.
    pub offset: Ticks,
    /// Maximum forward displacement applied to each arrival.
    pub jitter: Ticks,
    /// Seed for the jitter stream (ignored when `jitter` is zero).
    pub seed: u64,
}

impl Periodic {
    /// A zero-jitter periodic process starting at `offset`.
    pub fn new(offset: Ticks) -> Self {
        Periodic {
            offset,
            jitter: Ticks::ZERO,
            seed: 0,
        }
    }

    /// Adds bounded jitter.
    pub fn with_jitter(mut self, jitter: Ticks, seed: u64) -> Self {
        self.jitter = jitter;
        self.seed = seed;
        self
    }
}

impl ArrivalProcess for Periodic {
    fn arrival_times(&self, class: &MessageClass, horizon: Ticks) -> Vec<Ticks> {
        // Ceiling division: a·period ≥ w, so no sliding window of w ticks
        // ever holds more than a zero-jitter arrivals (floor division would
        // squeeze a+1 arrivals into a window whenever a ∤ w).
        let a = class.density.a;
        let period = Ticks(class.density.w.as_u64().div_ceil(a).max(1));
        let mut rng = seeded_rng(derive_seed(self.seed, u64::from(class.id.0)));
        let mut times = Vec::new();
        let mut t = self.offset;
        while t < horizon {
            let displaced = if self.jitter == Ticks::ZERO {
                t
            } else {
                t + Ticks(rng.gen_range(0..=self.jitter.as_u64()))
            };
            if displaced < horizon {
                times.push(displaced);
            }
            t += period;
        }
        times.sort_unstable();
        times
    }
}

/// Random arrivals that provably respect the density bound: exponential
/// candidate gaps (mean chosen so the long-run rate is `intensity · a/w`),
/// each arrival then pushed late enough that no `w`-window ever holds more
/// than `a` arrivals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedRandom {
    /// Fraction of the class's maximum rate to offer (0, 1].
    pub intensity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl BoundedRandom {
    /// Creates the process, validating `0 < intensity ≤ 1`.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::InvalidProcess`] when the intensity is
    /// outside `(0, 1]`.
    pub fn new(intensity: f64, seed: u64) -> Result<Self, TrafficError> {
        if !(intensity > 0.0 && intensity <= 1.0) {
            return Err(TrafficError::InvalidProcess(format!(
                "intensity must be in (0, 1], got {intensity}"
            )));
        }
        Ok(BoundedRandom { intensity, seed })
    }
}

impl ArrivalProcess for BoundedRandom {
    fn arrival_times(&self, class: &MessageClass, horizon: Ticks) -> Vec<Ticks> {
        let mut rng = seeded_rng(derive_seed(self.seed, u64::from(class.id.0)));
        let rate = class.density.rate() * self.intensity;
        let a = class.density.a as usize;
        let w = class.density.w;
        let mut times: Vec<Ticks> = Vec::new();
        let mut t = 0.0_f64;
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / rate;
            if t >= horizon.as_u64() as f64 {
                break;
            }
            let mut instant = Ticks(t as u64);
            // Enforce the bound: the arrival `a` places back must be at
            // least `w` older, else delay this one just past the window.
            if times.len() >= a {
                let anchor = times[times.len() - a];
                if instant < anchor + w {
                    instant = anchor + w;
                    t = instant.as_u64() as f64;
                }
            }
            if instant >= horizon {
                break;
            }
            times.push(instant);
        }
        times
    }
}

/// Self-similar (long-range-dependent) traffic via Pareto ON/OFF periods —
/// the arrival process real Ethernet measurements exhibit (Leland et al.,
/// the paper's ref 11; Paxson & Floyd's "failure of Poisson modeling",
/// ref 12 — both cited in §2.2 as the reason the paper adopts the unimodal
/// arbitrary model instead of stochastic ones).
///
/// During an ON period the class arrives at its full density rate `a/w`;
/// OFF periods are silent. Both period lengths are Pareto-distributed with
/// shape `alpha ∈ (1, 2)` (infinite variance ⇒ long-range dependence; the
/// classical Ethernet fit is `alpha ≈ 1.2`). The long-run rate is scaled
/// by `intensity`. **Bursts routinely violate the (a, w) density bound**
/// — that is the point: it models the traffic a stochastic design would
/// face, for the E16 realism experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelfSimilar {
    /// Pareto shape for ON/OFF durations; `(1, 2)` gives LRD.
    pub alpha: f64,
    /// Long-run fraction of the class's density rate to offer (0, 1].
    pub intensity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SelfSimilar {
    /// Creates the process, validating `alpha ∈ (1, 2]` and
    /// `intensity ∈ (0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::InvalidProcess`] on out-of-range parameters.
    pub fn new(alpha: f64, intensity: f64, seed: u64) -> Result<Self, TrafficError> {
        if !(alpha > 1.0 && alpha <= 2.0) {
            return Err(TrafficError::InvalidProcess(format!(
                "pareto shape must be in (1, 2], got {alpha}"
            )));
        }
        if !(intensity > 0.0 && intensity <= 1.0) {
            return Err(TrafficError::InvalidProcess(format!(
                "intensity must be in (0, 1], got {intensity}"
            )));
        }
        Ok(SelfSimilar {
            alpha,
            intensity,
            seed,
        })
    }

    /// A bounded Pareto draw with minimum `x_min` (truncated at 1000×
    /// `x_min` so a single period cannot swallow the whole horizon).
    fn pareto(&self, rng: &mut rand::rngs::StdRng, x_min: f64) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        (x_min / u.powf(1.0 / self.alpha)).min(x_min * 1000.0)
    }
}

impl ArrivalProcess for SelfSimilar {
    fn arrival_times(&self, class: &MessageClass, horizon: Ticks) -> Vec<Ticks> {
        let mut rng = seeded_rng(derive_seed(self.seed, u64::from(class.id.0)));
        // During ON, arrivals are spaced at the class's full-rate period;
        // mean ON/OFF lengths chosen so the long-run rate is
        // intensity · a/w: E[pareto(x_min)] = x_min·α/(α−1), so equal
        // x_min for ON and OFF gives duty cycle 1/2 — scale OFF for the
        // requested intensity.
        let on_gap = class.density.w.as_u64() as f64 / class.density.a as f64;
        let mean_on = 8.0 * on_gap;
        let duty = self.intensity.min(1.0);
        let off_scale = mean_on * (1.0 - duty) / duty.max(f64::EPSILON);
        let mut times = Vec::new();
        let mut t = 0.0f64;
        let end = horizon.as_u64() as f64;
        while t < end {
            // ON period: arrivals at the full density rate.
            let on_len = self.pareto(&mut rng, mean_on * (self.alpha - 1.0) / self.alpha);
            let on_end = (t + on_len).min(end);
            while t < on_end {
                times.push(Ticks(t as u64));
                t += on_gap;
            }
            // OFF period.
            let off_len = self.pareto(
                &mut rng,
                (off_scale * (self.alpha - 1.0) / self.alpha).max(1.0),
            );
            t += off_len;
        }
        times.retain(|&x| x < horizon);
        times.sort_unstable();
        times
    }
}

/// Replays a recorded list of arrival instants — for feeding captured or
/// hand-crafted traces (e.g. a specific adversarial pattern found by
/// search) through the same pipeline as the synthetic processes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Replay {
    times: Vec<Ticks>,
}

impl Replay {
    /// Creates a replay process; instants are sorted internally.
    pub fn new(mut times: Vec<Ticks>) -> Self {
        times.sort_unstable();
        Replay { times }
    }

    /// Validates the trace against a density bound before use.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::DensityViolation`] if the recorded trace
    /// exceeds the bound.
    pub fn validated(
        times: Vec<Ticks>,
        bound: crate::DensityBound,
    ) -> Result<Self, TrafficError> {
        let replay = Replay::new(times);
        crate::validate::check_density(&replay.times, bound)?;
        Ok(replay)
    }
}

impl ArrivalProcess for Replay {
    fn arrival_times(&self, _class: &MessageClass, horizon: Ticks) -> Vec<Ticks> {
        self.times
            .iter()
            .copied()
            .take_while(|&t| t < horizon)
            .collect()
    }
}

/// Memoryless Poisson arrivals at rate `intensity · a/w`.
///
/// Poisson traffic does **not** respect the density bound (bursts of any
/// size have positive probability); the paper cites exactly this mismatch
/// as the flaw of stochastic feasibility analyses. Provided for baseline
/// experiments (E8) only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    /// Rate multiplier relative to the class's density rate.
    pub intensity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ArrivalProcess for Poisson {
    fn arrival_times(&self, class: &MessageClass, horizon: Ticks) -> Vec<Ticks> {
        let mut rng = seeded_rng(derive_seed(self.seed, u64::from(class.id.0)));
        let rate = class.density.rate() * self.intensity;
        let mut times = Vec::new();
        let mut t = 0.0_f64;
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / rate;
            if t >= horizon.as_u64() as f64 {
                break;
            }
            times.push(Ticks(t as u64));
        }
        times
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::DensityBound;
    use crate::validate::check_density;
    use ddcr_sim::{ClassId, SourceId};

    fn class(a: u64, w: u64) -> MessageClass {
        MessageClass {
            id: ClassId(0),
            name: "test".into(),
            source: SourceId(0),
            bits: 1000,
            deadline: Ticks(100_000),
            density: DensityBound::new(a, Ticks(w)).unwrap(),
        }
    }

    #[test]
    fn peak_load_bursts_at_window_starts() {
        let c = class(3, 1000);
        let times = PeakLoad.arrival_times(&c, Ticks(2500));
        assert_eq!(
            times,
            vec![
                Ticks(0),
                Ticks(0),
                Ticks(0),
                Ticks(1000),
                Ticks(1000),
                Ticks(1000),
                Ticks(2000),
                Ticks(2000),
                Ticks(2000)
            ]
        );
        assert!(check_density(&times, c.density).is_ok());
    }

    #[test]
    fn periodic_is_evenly_spaced() {
        let c = class(2, 1000); // period 500
        let times = Periodic::new(Ticks(100)).arrival_times(&c, Ticks(2100));
        assert_eq!(times, vec![Ticks(100), Ticks(600), Ticks(1100), Ticks(1600)]);
        assert!(check_density(&times, c.density).is_ok());
    }

    #[test]
    fn periodic_jitter_is_bounded_and_deterministic() {
        let c = class(1, 1000);
        let p = Periodic::new(Ticks::ZERO).with_jitter(Ticks(100), 42);
        let a = p.arrival_times(&c, Ticks(10_000));
        let b = p.arrival_times(&c, Ticks(10_000));
        assert_eq!(a, b);
        for (i, t) in a.iter().enumerate() {
            let nominal = 1000 * i as u64;
            assert!(t.as_u64() >= nominal && t.as_u64() <= nominal + 100);
        }
    }

    #[test]
    fn bounded_random_respects_density() {
        let c = class(3, 1000);
        for seed in 0..8 {
            let p = BoundedRandom::new(1.0, seed).unwrap();
            let times = p.arrival_times(&c, Ticks(100_000));
            assert!(!times.is_empty());
            assert!(
                check_density(&times, c.density).is_ok(),
                "seed {seed} violated the bound"
            );
        }
    }

    #[test]
    fn bounded_random_rejects_bad_intensity() {
        assert!(BoundedRandom::new(0.0, 0).is_err());
        assert!(BoundedRandom::new(1.5, 0).is_err());
        assert!(BoundedRandom::new(f64::NAN, 0).is_err());
    }

    #[test]
    fn poisson_rate_roughly_matches() {
        let c = class(1, 1000); // rate 0.001
        let p = Poisson {
            intensity: 1.0,
            seed: 7,
        };
        let times = p.arrival_times(&c, Ticks(1_000_000));
        // Expect ~1000 arrivals; allow wide tolerance.
        assert!((700..1300).contains(&times.len()), "got {}", times.len());
    }

    #[test]
    fn self_similar_is_bursty_and_deterministic() {
        let c = class(1, 1_000);
        let p = SelfSimilar::new(1.2, 0.5, 9).unwrap();
        let a = p.arrival_times(&c, Ticks(2_000_000));
        let b = p.arrival_times(&c, Ticks(2_000_000));
        assert_eq!(a, b, "must be a pure function of the seed");
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|p| p[0] <= p[1]));
        // Burstiness: the ON periods pack arrivals at the full rate, so the
        // trace should violate a density bound tighter than the full rate…
        // here the bound itself (a=1/w=1000) is met *during* ON periods,
        // but long-range dependence shows as high variance of per-window
        // counts; check that both dense and empty 10k-windows exist.
        let window = 10_000u64;
        let horizon = 2_000_000u64;
        let mut counts = vec![0u32; (horizon / window) as usize];
        for t in &a {
            let idx = (t.as_u64() / window) as usize;
            if idx < counts.len() {
                counts[idx] += 1;
            }
        }
        let max = counts.iter().max().copied().unwrap();
        let zeros = counts.iter().filter(|&&c| c == 0).count();
        assert!(max >= 5, "no dense window: max = {max}");
        assert!(zeros > 0, "no silent window");
    }

    #[test]
    fn self_similar_validates_parameters() {
        assert!(SelfSimilar::new(1.0, 0.5, 0).is_err());
        assert!(SelfSimilar::new(2.5, 0.5, 0).is_err());
        assert!(SelfSimilar::new(1.2, 0.0, 0).is_err());
        assert!(SelfSimilar::new(1.2, 1.5, 0).is_err());
    }

    #[test]
    fn replay_reproduces_and_validates() {
        let c = class(2, 1000);
        let replay = Replay::new(vec![Ticks(500), Ticks(10), Ticks(2000)]);
        assert_eq!(
            replay.arrival_times(&c, Ticks(1500)),
            vec![Ticks(10), Ticks(500)]
        );
        assert!(Replay::validated(vec![Ticks(0), Ticks(1)], c.density).is_ok());
        assert!(
            Replay::validated(vec![Ticks(0), Ticks(1), Ticks(2)], c.density).is_err()
        );
    }

    #[test]
    fn all_processes_sorted_and_within_horizon() {
        let c = class(2, 500);
        let horizon = Ticks(10_000);
        let runs: Vec<Vec<Ticks>> = vec![
            PeakLoad.arrival_times(&c, horizon),
            Periodic::new(Ticks(3)).arrival_times(&c, horizon),
            BoundedRandom::new(0.5, 1).unwrap().arrival_times(&c, horizon),
            Poisson {
                intensity: 0.5,
                seed: 1,
            }
            .arrival_times(&c, horizon),
        ];
        for times in runs {
            assert!(times.windows(2).all(|p| p[0] <= p[1]));
            assert!(times.iter().all(|&t| t < horizon));
        }
    }
}
