//! # ddcr-traffic — HRTDM workload models
//!
//! Message sets and arrival processes for the Hard Real-Time Distributed
//! Multiaccess problem (§2.2 of Hermant & Le Lann, ICDCS 1998).
//!
//! The HRTDM arrival model is **unimodal arbitrary**: each message class
//! promises only a density bound — at most `a` arrivals in any sliding
//! window of `w` ticks. This crate provides:
//!
//! * [`MessageSet`] / [`MessageClass`] / [`DensityBound`] — the `<m.HRTDM>`
//!   models: message classes with bit lengths, relative deadlines and
//!   density bounds, partitioned over `z` sources;
//! * [`arrival`] — arrival processes: the adversarial [`arrival::PeakLoad`]
//!   pattern the feasibility conditions assume, plus periodic (with
//!   jitter), density-respecting random, and Poisson generators;
//! * [`ScheduleBuilder`] — turns a set plus processes into a concrete,
//!   id-allocated [`ddcr_sim::Message`] schedule;
//! * [`validate`] — sliding-window checking that a trace really respects
//!   its declared density bounds;
//! * [`scenario`] — presets for the paper's motivating applications
//!   (videoconferencing, air traffic control, stock exchange) and a
//!   tunable synthetic scenario for load sweeps.
//!
//! ## Quickstart
//!
//! ```
//! use ddcr_sim::Ticks;
//! use ddcr_traffic::{scenario, validate, ScheduleBuilder};
//!
//! # fn main() -> Result<(), ddcr_traffic::TrafficError> {
//! let set = scenario::air_traffic_control(4)?;
//! let schedule = ScheduleBuilder::peak_load(&set).build(Ticks(10_000_000))?;
//! validate::check_schedule(&set, &schedule)?; // peak load is legal traffic
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod arrival;
mod class;
mod error;
mod generator;
pub mod scenario;
pub mod validate;

pub use class::{DensityBound, MessageClass, MessageSet};
pub use error::TrafficError;
pub use generator::{offered_load, ScheduleBuilder};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MessageSet>();
        assert_send_sync::<TrafficError>();
        assert_send_sync::<DensityBound>();
    }
}
