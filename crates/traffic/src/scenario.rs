//! Scenario presets for the application domains the paper motivates
//! (§2.1): distributed interactive multimedia / videoconferencing, on-line
//! transactions (stock markets), and surveillance (air traffic control).
//!
//! All figures are in ticks at `ψ = 1 Gbit/s`, i.e. **1 tick = 1 ns**: a
//! 1500-byte frame is 12 000 bits = 12 µs of channel time, a millisecond is
//! `1_000_000` ticks.

use crate::class::{DensityBound, MessageClass, MessageSet};
use crate::error::TrafficError;
use ddcr_sim::{ClassId, SourceId, Ticks};

/// Milliseconds to ticks at 1 Gbit/s.
const fn ms(v: u64) -> Ticks {
    Ticks(v * 1_000_000)
}

/// Microseconds to ticks at 1 Gbit/s.
const fn us(v: u64) -> Ticks {
    Ticks(v * 1_000)
}

/// Builds a set where each of `z` sources runs the same class templates.
fn replicate(
    z: u32,
    templates: &[(&str, u64, Ticks, u64, Ticks)],
) -> Result<MessageSet, TrafficError> {
    let mut classes = Vec::with_capacity(z as usize * templates.len());
    let mut next_id = 0u32;
    for source in 0..z {
        for &(name, bits, deadline, a, w) in templates {
            classes.push(MessageClass {
                id: ClassId(next_id),
                name: format!("{name}/s{source}"),
                source: SourceId(source),
                bits,
                deadline,
                density: DensityBound::new(a, w)?,
            });
            next_id += 1;
        }
    }
    MessageSet::new(z, classes)
}

/// Videoconferencing over a gigabit broadcast LAN: per participant a video
/// stream (1500-byte fragments, two per 2 ms window, 8 ms deadline — a
/// quarter frame period at 30 fps), an audio stream (200-byte packets
/// every 500 µs, 4 ms deadline) and occasional floor-control messages.
///
/// Offered load ≈ 1.5 % of the channel per participant; a gigabit segment
/// provably carries on the order of ten participants (see the
/// `videoconference` example, which sweeps the feasibility frontier).
///
/// # Errors
///
/// Propagates [`TrafficError`] from set construction (`z` must be ≥ 1 for a
/// non-empty set; `z = 0` yields an empty valid set).
pub fn videoconference(z: u32) -> Result<MessageSet, TrafficError> {
    replicate(
        z,
        &[
            ("video", 12_000, ms(8), 2, ms(2)),
            ("audio", 1_600, ms(4), 1, us(500)),
            ("control", 800, ms(20), 1, ms(20)),
        ],
    )
}

/// Air-traffic-control surveillance: per sensor/controller station, radar
/// track updates (300 bytes, two per millisecond, 4 ms deadline), rare but
/// urgent conflict alerts (64 bytes, 2 ms deadline — the binding
/// requirement) and weather imagery fragmented into 3 kB cells (four per
/// 10 ms, 10 ms deadline) so no single frame can block an alert for long —
/// the classical blocking-aware fragmentation a hard-real-time design
/// requires.
///
/// # Errors
///
/// Propagates [`TrafficError`] from set construction.
pub fn air_traffic_control(z: u32) -> Result<MessageSet, TrafficError> {
    replicate(
        z,
        &[
            ("track", 2_400, ms(4), 2, ms(1)),
            ("alert", 512, ms(2), 1, ms(10)),
            ("weather", 24_000, ms(10), 4, ms(10)),
        ],
    )
}

/// On-line transactions (stock market): per gateway, bursty order messages
/// (128 bytes, bursts of 10 per millisecond, 500 µs deadline), market-data
/// multicast (1 kB, four per millisecond) and periodic audit records.
///
/// # Errors
///
/// Propagates [`TrafficError`] from set construction.
pub fn stock_exchange(z: u32) -> Result<MessageSet, TrafficError> {
    replicate(
        z,
        &[
            ("order", 1_024, us(500), 10, ms(1)),
            ("mktdata", 8_000, ms(1), 4, ms(1)),
            ("audit", 64_000, ms(20), 1, ms(20)),
        ],
    )
}

/// Discrete-manufacturing cell control — the domain the protocol's
/// ancestor CSMA/DCR was actually deployed in (§5: Dassault Electronique,
/// APTOR, the Ariane launchpad LAN at Kourou). Per controller station:
/// sensor scans (64 bytes, two per 2 ms, 4 ms deadline), actuator commands
/// (32 bytes, one per 4 ms, 2 ms deadline) and supervisory/PLC state
/// uploads (2 kB per 50 ms).
///
/// # Errors
///
/// Propagates [`TrafficError`] from set construction.
pub fn manufacturing_cell(z: u32) -> Result<MessageSet, TrafficError> {
    replicate(
        z,
        &[
            ("scan", 512, ms(4), 2, ms(2)),
            ("actuate", 256, ms(2), 1, ms(4)),
            ("plc", 16_000, ms(50), 1, ms(50)),
        ],
    )
}

/// A tunable synthetic scenario: `z` sources, each with one class of
/// `bits`-bit messages whose density is chosen so the total offered load is
/// `load` (fraction of channel capacity) and whose deadline is `deadline`.
///
/// # Errors
///
/// Returns [`TrafficError::InvalidProcess`] if `load` is not in `(0, 1]`
/// or `z` is zero; propagates construction errors otherwise.
pub fn uniform(
    z: u32,
    bits: u64,
    deadline: Ticks,
    load: f64,
) -> Result<MessageSet, TrafficError> {
    if z == 0 || !(load > 0.0 && load <= 1.0) {
        return Err(TrafficError::InvalidProcess(format!(
            "uniform scenario needs z ≥ 1 and load in (0, 1], got z={z}, load={load}"
        )));
    }
    // Per-source rate r such that z · bits · r = load  ⇒  w = z·bits/load.
    let w = (z as f64 * bits as f64 / load).round() as u64;
    replicate(z, &[("uniform", bits, deadline, 1, Ticks(w.max(1)))])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn videoconference_load_is_light_per_participant() {
        let set = videoconference(8).unwrap();
        assert_eq!(set.sources(), 8);
        assert_eq!(set.classes().len(), 24);
        let load = set.offered_load();
        assert!((0.05..0.3).contains(&load), "load = {load}");
    }

    #[test]
    fn atc_has_tight_alert_deadlines() {
        let set = air_traffic_control(4).unwrap();
        let alert = set
            .classes()
            .iter()
            .find(|c| c.name.starts_with("alert"))
            .unwrap();
        assert_eq!(alert.deadline, Ticks(2_000_000));
        assert!(set.offered_load() < 0.3);
    }

    #[test]
    fn stock_exchange_is_bursty() {
        let set = stock_exchange(4).unwrap();
        let order = set
            .classes()
            .iter()
            .find(|c| c.name.starts_with("order"))
            .unwrap();
        assert_eq!(order.density.a, 10);
    }

    #[test]
    fn manufacturing_cell_is_light_and_tight() {
        let set = manufacturing_cell(8).unwrap();
        assert!(set.offered_load() < 0.05, "control traffic is light");
        let actuate = set
            .classes()
            .iter()
            .find(|c| c.name.starts_with("actuate"))
            .unwrap();
        assert_eq!(actuate.deadline, Ticks(2_000_000));
    }

    #[test]
    fn uniform_hits_requested_load() {
        for load in [0.1, 0.5, 0.9] {
            let set = uniform(8, 8_000, Ticks(1_000_000), load).unwrap();
            assert!(
                (set.offered_load() - load).abs() < 0.01,
                "requested {load}, got {}",
                set.offered_load()
            );
        }
    }

    #[test]
    fn uniform_rejects_degenerate_inputs() {
        assert!(uniform(0, 1000, Ticks(1000), 0.5).is_err());
        assert!(uniform(4, 1000, Ticks(1000), 0.0).is_err());
        assert!(uniform(4, 1000, Ticks(1000), 1.5).is_err());
    }

    #[test]
    fn class_ids_are_unique_across_sources() {
        let set = stock_exchange(16).unwrap();
        let mut ids: Vec<u32> = set.classes().iter().map(|c| c.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), set.classes().len());
    }
}
