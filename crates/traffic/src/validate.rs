//! Density-bound validation: does a trace actually respect `a/w`?

use crate::class::DensityBound;
use crate::error::TrafficError;
use ddcr_sim::{ClassId, Message, Ticks};
use std::collections::BTreeMap;

/// Checks that a sorted list of arrival instants never places more than
/// `bound.a` arrivals in any sliding window of `bound.w` ticks.
///
/// Windows are half-open `[s, s + w)`: arrivals exactly `w` apart are in
/// different windows, matching the adversary the feasibility conditions
/// assume. Runs in `O(n)` with two pointers.
///
/// # Errors
///
/// Returns [`TrafficError::DensityViolation`] describing the first
/// offending window. The reported `class` is `ClassId(u32::MAX)` since bare
/// instants carry no class; prefer [`check_schedule`] for full schedules.
///
/// # Panics
///
/// Panics if `times` is not sorted non-decreasing.
pub fn check_density(times: &[Ticks], bound: DensityBound) -> Result<(), TrafficError> {
    assert!(
        times.windows(2).all(|p| p[0] <= p[1]),
        "arrival instants must be sorted"
    );
    check_density_inner(times, bound, ClassId(u32::MAX))
}

fn check_density_inner(
    times: &[Ticks],
    bound: DensityBound,
    class: ClassId,
) -> Result<(), TrafficError> {
    let a = bound.a as usize;
    let mut lo = 0usize;
    for hi in 0..times.len() {
        // Shrink the window so it spans < w ticks.
        while times[hi] - times[lo] >= bound.w {
            lo += 1;
        }
        let in_window = hi - lo + 1;
        if in_window > a {
            return Err(TrafficError::DensityViolation {
                class,
                window_start: times[lo],
                observed: in_window as u64,
                allowed: bound.a,
            });
        }
    }
    Ok(())
}

/// Checks a complete schedule against the density bound of every class in
/// the message set.
///
/// # Errors
///
/// Returns the first per-class [`TrafficError::DensityViolation`], or
/// [`TrafficError::InvalidProcess`] if a message references a class absent
/// from the set.
pub fn check_schedule(
    set: &crate::MessageSet,
    schedule: &[Message],
) -> Result<(), TrafficError> {
    let mut per_class: BTreeMap<ClassId, Vec<Ticks>> = BTreeMap::new();
    for msg in schedule {
        per_class.entry(msg.class).or_default().push(msg.arrival);
    }
    for (class, mut times) in per_class {
        let bound = set
            .class(class)
            .ok_or_else(|| {
                TrafficError::InvalidProcess(format!("message references unknown class {class}"))
            })?
            .density;
        times.sort_unstable();
        check_density_inner(&times, bound, class)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bound(a: u64, w: u64) -> DensityBound {
        DensityBound::new(a, Ticks(w)).unwrap()
    }

    #[test]
    fn empty_and_singleton_pass() {
        assert!(check_density(&[], bound(1, 100)).is_ok());
        assert!(check_density(&[Ticks(5)], bound(1, 100)).is_ok());
    }

    #[test]
    fn exact_window_spacing_passes() {
        // Arrivals exactly w apart are in different half-open windows.
        let times = [Ticks(0), Ticks(100), Ticks(200)];
        assert!(check_density(&times, bound(1, 100)).is_ok());
    }

    #[test]
    fn burst_at_cap_passes_over_cap_fails() {
        let ok = [Ticks(0), Ticks(0), Ticks(0)];
        assert!(check_density(&ok, bound(3, 100)).is_ok());
        let bad = [Ticks(0), Ticks(0), Ticks(0), Ticks(0)];
        let err = check_density(&bad, bound(3, 100)).unwrap_err();
        assert!(matches!(
            err,
            TrafficError::DensityViolation {
                observed: 4,
                allowed: 3,
                ..
            }
        ));
    }

    #[test]
    fn sliding_window_catches_straddling_burst() {
        // 2 allowed per 100; arrivals at 0, 60, 120: window [60,160) holds 2 — ok.
        assert!(check_density(&[Ticks(0), Ticks(60), Ticks(120)], bound(2, 100)).is_ok());
        // arrivals at 0, 60, 90: window [0,100) holds 3 — violation.
        assert!(check_density(&[Ticks(0), Ticks(60), Ticks(90)], bound(2, 100)).is_err());
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_input_panics() {
        let _ = check_density(&[Ticks(5), Ticks(1)], bound(1, 10));
    }
}
