//! Error type for workload construction and validation.

use ddcr_sim::{ClassId, SourceId, Ticks};
use std::error::Error;
use std::fmt;

/// Error returned by workload builders and validators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TrafficError {
    /// A density bound with `a = 0` or `w = 0` is meaningless.
    InvalidDensity {
        /// Offending arrival count.
        a: u64,
        /// Offending window.
        w: Ticks,
    },
    /// A class maps onto a source index outside the set.
    SourceOutOfRange {
        /// Offending class.
        class: ClassId,
        /// Its declared source.
        source: SourceId,
        /// Number of sources in the set.
        sources: u32,
    },
    /// Two classes share an id.
    DuplicateClass {
        /// The repeated id.
        class: ClassId,
    },
    /// A class with zero-length messages.
    EmptyClass {
        /// The offending class.
        class: ClassId,
    },
    /// A generated trace violates its declared density bound.
    DensityViolation {
        /// The offending class.
        class: ClassId,
        /// Start of the violating window.
        window_start: Ticks,
        /// Arrivals observed in the window.
        observed: u64,
        /// The declared cap.
        allowed: u64,
    },
    /// A process parameter is out of range (e.g. zero period).
    InvalidProcess(String),
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficError::InvalidDensity { a, w } => {
                write!(f, "invalid density bound: a={a}, w={w}")
            }
            TrafficError::SourceOutOfRange {
                class,
                source,
                sources,
            } => write!(
                f,
                "class {class} maps to {source} but the set has {sources} sources"
            ),
            TrafficError::DuplicateClass { class } => {
                write!(f, "duplicate class id {class}")
            }
            TrafficError::EmptyClass { class } => {
                write!(f, "class {class} has zero-length messages")
            }
            TrafficError::DensityViolation {
                class,
                window_start,
                observed,
                allowed,
            } => write!(
                f,
                "class {class}: {observed} arrivals in window starting {window_start}, bound is {allowed}"
            ),
            TrafficError::InvalidProcess(msg) => write!(f, "invalid arrival process: {msg}"),
        }
    }
}

impl Error for TrafficError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = TrafficError::DensityViolation {
            class: ClassId(3),
            window_start: Ticks(100),
            observed: 5,
            allowed: 2,
        };
        let s = e.to_string();
        assert!(s.contains("c3") && s.contains('5') && s.contains('2'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TrafficError>();
    }
}
