//! Message classes, density bounds and the HRTDM message-set model
//! (`<m.HRTDM>`, §2.2 of the paper).

use crate::error::TrafficError;
use ddcr_sim::{ClassId, SourceId, Ticks};
use serde::{Deserialize, Serialize};

/// The unimodal arbitrary arrival bound `a(msg)/w(msg)`: at most `a`
/// arrivals of the class in **any** sliding window of `w` ticks.
///
/// This adversary is strictly stronger than periodic or Poisson arrival
/// models: it allows arbitrary burst placement subject only to the density
/// cap, which is exactly what the feasibility conditions of §4.3 are proved
/// against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DensityBound {
    /// Maximum number of arrivals in any window.
    pub a: u64,
    /// Sliding window length in ticks.
    pub w: Ticks,
}

impl DensityBound {
    /// Creates a bound, validating `a ≥ 1` and `w > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::InvalidDensity`] on degenerate parameters.
    pub fn new(a: u64, w: Ticks) -> Result<Self, TrafficError> {
        if a == 0 || w == Ticks::ZERO {
            return Err(TrafficError::InvalidDensity { a, w });
        }
        Ok(DensityBound { a, w })
    }

    /// Long-run arrival rate implied by the bound, in arrivals per tick.
    pub fn rate(&self) -> f64 {
        self.a as f64 / self.w.as_u64() as f64
    }
}

/// One message class of the set `MSG`: every instance shares the bit length
/// `l`, the relative deadline `d` and the density bound `a/w`, and the class
/// is mapped onto exactly one source (the partition of `MSG` into the
/// `MSG_k`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageClass {
    /// Class identifier (index into the message set).
    pub id: ClassId,
    /// Human-readable label (e.g. `"video-frame"`).
    pub name: String,
    /// The source the class is mapped onto.
    pub source: SourceId,
    /// Data-Link PDU bit length `l(msg)`.
    pub bits: u64,
    /// Relative hard deadline `d(msg)`.
    pub deadline: Ticks,
    /// Arrival density bound `a(msg)/w(msg)`.
    pub density: DensityBound,
}

impl MessageClass {
    /// Long-run offered load of this class in bits per tick (= fraction of
    /// a 1 bit/tick channel), before physical overhead.
    pub fn offered_load(&self) -> f64 {
        self.bits as f64 * self.density.rate()
    }
}

/// A complete HRTDM message set: the classes of `MSG`, partitioned over `z`
/// sources.
///
/// # Examples
///
/// ```
/// use ddcr_sim::{ClassId, SourceId, Ticks};
/// use ddcr_traffic::{DensityBound, MessageClass, MessageSet};
///
/// # fn main() -> Result<(), ddcr_traffic::TrafficError> {
/// let set = MessageSet::new(2, vec![MessageClass {
///     id: ClassId(0),
///     name: "telemetry".into(),
///     source: SourceId(0),
///     bits: 8_000,
///     deadline: Ticks(1_000_000),
///     density: DensityBound::new(2, Ticks(500_000))?,
/// }])?;
/// assert_eq!(set.sources(), 2);
/// assert_eq!(set.classes().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageSet {
    sources: u32,
    classes: Vec<MessageClass>,
}

impl MessageSet {
    /// Builds a message set over `sources` stations.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::SourceOutOfRange`] if a class maps to a
    /// source `≥ sources`, [`TrafficError::DuplicateClass`] on repeated
    /// class ids, and [`TrafficError::EmptyClass`] on zero-bit messages.
    pub fn new(sources: u32, classes: Vec<MessageClass>) -> Result<Self, TrafficError> {
        let mut seen = std::collections::HashSet::new();
        for class in &classes {
            if class.source.0 >= sources {
                return Err(TrafficError::SourceOutOfRange {
                    class: class.id,
                    source: class.source,
                    sources,
                });
            }
            if !seen.insert(class.id) {
                return Err(TrafficError::DuplicateClass { class: class.id });
            }
            if class.bits == 0 {
                return Err(TrafficError::EmptyClass { class: class.id });
            }
        }
        Ok(MessageSet { sources, classes })
    }

    /// Number of sources `z`.
    pub fn sources(&self) -> u32 {
        self.sources
    }

    /// All classes of `MSG`.
    pub fn classes(&self) -> &[MessageClass] {
        &self.classes
    }

    /// The subset `MSG_i` mapped onto one source.
    pub fn classes_of(&self, source: SourceId) -> impl Iterator<Item = &MessageClass> {
        self.classes.iter().filter(move |c| c.source == source)
    }

    /// A class by id.
    pub fn class(&self, id: ClassId) -> Option<&MessageClass> {
        self.classes.iter().find(|c| c.id == id)
    }

    /// Total long-run offered load in bits per tick (fraction of channel
    /// capacity at 1 bit/tick), before physical overhead.
    pub fn offered_load(&self) -> f64 {
        self.classes.iter().map(MessageClass::offered_load).sum()
    }

    /// Scales every class's density window by `1/factor` (i.e. multiplies
    /// the arrival rate by `factor`), returning a new set. Useful for load
    /// sweeps in experiments.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::InvalidDensity`] if the scaled window
    /// underflows to zero.
    pub fn scaled_rate(&self, factor: f64) -> Result<MessageSet, TrafficError> {
        let mut classes = self.classes.clone();
        for class in &mut classes {
            let w = (class.density.w.as_u64() as f64 / factor).round() as u64;
            class.density = DensityBound::new(class.density.a, Ticks(w))?;
        }
        MessageSet::new(self.sources, classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(id: u32, source: u32) -> MessageClass {
        MessageClass {
            id: ClassId(id),
            name: format!("c{id}"),
            source: SourceId(source),
            bits: 1000,
            deadline: Ticks(100_000),
            density: DensityBound::new(1, Ticks(50_000)).unwrap(),
        }
    }

    #[test]
    fn density_bound_validation() {
        assert!(DensityBound::new(0, Ticks(10)).is_err());
        assert!(DensityBound::new(1, Ticks::ZERO).is_err());
        let b = DensityBound::new(4, Ticks(1000)).unwrap();
        assert!((b.rate() - 0.004).abs() < 1e-12);
    }

    #[test]
    fn set_validation() {
        assert!(MessageSet::new(2, vec![class(0, 0), class(1, 1)]).is_ok());
        assert!(matches!(
            MessageSet::new(1, vec![class(0, 1)]),
            Err(TrafficError::SourceOutOfRange { .. })
        ));
        assert!(matches!(
            MessageSet::new(2, vec![class(0, 0), class(0, 1)]),
            Err(TrafficError::DuplicateClass { .. })
        ));
        let mut empty = class(0, 0);
        empty.bits = 0;
        assert!(matches!(
            MessageSet::new(1, vec![empty]),
            Err(TrafficError::EmptyClass { .. })
        ));
    }

    #[test]
    fn partition_by_source() {
        let set = MessageSet::new(2, vec![class(0, 0), class(1, 1), class(2, 0)]).unwrap();
        assert_eq!(set.classes_of(SourceId(0)).count(), 2);
        assert_eq!(set.classes_of(SourceId(1)).count(), 1);
        assert!(set.class(ClassId(2)).is_some());
        assert!(set.class(ClassId(9)).is_none());
    }

    #[test]
    fn offered_load_sums_classes() {
        let set = MessageSet::new(2, vec![class(0, 0), class(1, 1)]).unwrap();
        // Each class: 1000 bits / 50_000 ticks = 0.02
        assert!((set.offered_load() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn scaled_rate_multiplies_load() {
        let set = MessageSet::new(1, vec![class(0, 0)]).unwrap();
        let doubled = set.scaled_rate(2.0).unwrap();
        assert!((doubled.offered_load() - 2.0 * set.offered_load()).abs() < 1e-9);
    }
}
