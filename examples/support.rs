//! Shared pretty-printing helpers for the example binaries.

#![warn(missing_docs)]

use ddcr_core::feasibility::FeasibilityReport;
use ddcr_sim::ChannelStats;

/// Prints a feasibility report as a per-class table.
pub fn print_feasibility(report: &FeasibilityReport) {
    println!(
        "{:>6} {:>6} {:>6} {:>6} {:>4} {:>14} {:>14} {:>10} {:>9}",
        "class", "source", "r(M)", "u(M)", "v(M)", "B_DDCR (ticks)", "d(M) (ticks)", "slack", "feasible"
    );
    for c in &report.per_class {
        println!(
            "{:>6} {:>6} {:>6} {:>6} {:>4} {:>14.0} {:>14} {:>10.2e} {:>9}",
            c.class.to_string(),
            c.source.to_string(),
            c.r,
            c.u,
            c.v,
            c.bound,
            c.deadline.as_u64(),
            c.slack(),
            c.feasible
        );
    }
    println!(
        "=> instance {}",
        if report.feasible() {
            "FEASIBLE: every class meets B_DDCR <= d"
        } else {
            "INFEASIBLE: at least one class can miss its deadline in the worst case"
        }
    );
}

/// Prints a one-line summary of a simulation run.
pub fn print_run(label: &str, stats: &ChannelStats) {
    println!(
        "{label:<28} delivered={:<5} misses={:<3} max_latency={:<9} mean_latency={:<10.0} util={:.3} collisions={}",
        stats.deliveries.len(),
        stats.deadline_misses(),
        stats.max_latency().as_u64(),
        stats.mean_latency(),
        stats.utilization(),
        stats.collisions,
    );
}
