//! Discrete-manufacturing cell control — the domain CSMA/DCR (this
//! protocol's industrial ancestor, §5) actually shipped in: Dassault
//! Electronique and APTOR deployed dual-bus Ethernets for manufacturing
//! and for the Ariane launchpad LAN at Kourou.
//!
//! Sensor scans, actuator commands and PLC uploads share one bus; the
//! example proves the 2 ms actuation deadline, runs the peak-load drill,
//! prints latency percentiles and renders the channel timeline so you can
//! *see* the deterministic resolution at work.
//!
//! ```text
//! cargo run -p ddcr-examples --example manufacturing
//! ```

use ddcr_core::{feasibility, network, DdcrConfig, StaticAllocation};
use ddcr_examples::print_run;
use ddcr_sim::{MediumConfig, Ticks, Trace};
use ddcr_traffic::{scenario, ScheduleBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let z = 8u32;
    let set = scenario::manufacturing_cell(z)?;
    let medium = MediumConfig::ethernet();
    let c = network::recommended_class_width(&set, 64, &medium);
    let config = DdcrConfig::for_sources(z, c)?;
    let allocation = StaticAllocation::one_per_source(config.static_tree, z)?;
    println!(
        "manufacturing cell: {z} controllers, load {:.4}, actuation deadline 2 ms",
        set.offered_load()
    );

    let report = feasibility::evaluate(&set, &config, &allocation, &medium)?;
    let tightest = report.tightest().expect("classes");
    println!(
        "feasibility: {} (binding class {} — bound {:.0} of {} ticks, {:.0}% transmission / {:.0}% search)",
        if report.feasible() { "PROVEN" } else { "REJECTED" },
        tightest.class,
        tightest.bound,
        tightest.deadline.as_u64(),
        100.0 * tightest.transmission_fraction(),
        100.0 * (1.0 - tightest.transmission_fraction()),
    );
    assert!(report.feasible());

    // Peak-load drill with a traced channel.
    let mut engine = network::build_engine(&set, &config, &allocation, medium)?;
    engine.set_trace(Trace::with_capacity(120));
    let schedule = ScheduleBuilder::peak_load(&set).build(Ticks(20_000_000))?;
    let n = schedule.len();
    engine.add_arrivals(schedule)?;
    engine.run_to_completion(Ticks(10_000_000_000))?;
    let timeline = engine.trace().render_timeline();
    let stats = engine.into_stats();
    println!("\npeak-load drill ({n} messages):");
    print_run("manufacturing cell", &stats);
    let (p50, p95, p99) = stats.latency_percentiles();
    println!(
        "latency percentiles: p50 = {} us, p95 = {} us, p99 = {} us",
        p50.as_u64() / 1000,
        p95.as_u64() / 1000,
        p99.as_u64() / 1000
    );
    assert_eq!(stats.deadline_misses(), 0);

    println!("\nlast channel events (.=silence, X=collision, #=transmission):");
    println!("  {timeline}");
    println!(
        "\nthe deterministic pattern — a collision burst, then a clean run of \
         transmissions — is the tree search resolving a peak burst in bounded time."
    );
    Ok(())
}
