//! Air-traffic-control surveillance — the safety-critical application of
//! §2.1, where "the deadline is the specification".
//!
//! Radar track updates (4 ms), conflict alerts (2 ms — the binding
//! requirement) and fragmented weather imagery share one broadcast
//! segment. The example shows the
//! engineering workflow the paper advocates: start from the requirement,
//! tune the protocol dimensioning (deadline class width `c`, static index
//! allocation ν) until the feasibility conditions *prove* the requirement,
//! then demonstrate the guarantee under adversarial load — including the
//! alert burst arriving at the worst possible instant.
//!
//! ```text
//! cargo run -p ddcr-examples --example air_traffic_control
//! ```

use ddcr_core::{feasibility, network, DdcrConfig, StaticAllocation};
use ddcr_examples::{print_feasibility, print_run};
use ddcr_sim::{MediumConfig, Ticks};
use ddcr_traffic::{scenario, ScheduleBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let z = 4u32;
    let set = scenario::air_traffic_control(z)?;
    let medium = MediumConfig::gigabit_ethernet();
    println!(
        "ATC segment: {z} stations, load {:.3}, tightest deadline {} ticks (conflict alerts)",
        set.offered_load(),
        set.classes()
            .iter()
            .map(|c| c.deadline.as_u64())
            .min()
            .expect("classes")
    );

    // Candidate dimensionings: sweep the deadline-class width and the
    // static allocation and let the FCs pick a provable one.
    println!("\ncandidate dimensionings:");
    println!(
        "{:>12} {:>12} {:>10} {:>22} {:>9}",
        "c (ticks)", "horizon", "nu/source", "tightest slack", "feasible"
    );
    let mut accepted = None;
    for c_us in [400u64, 100, 50, 25] {
        let c = Ticks(c_us * 1_000);
        let config = DdcrConfig::for_sources(z, c)?;
        let allocation = StaticAllocation::round_robin(config.static_tree, z)?;
        let report = feasibility::evaluate(&set, &config, &allocation, &medium)?;
        let tightest = report.tightest().expect("classes");
        println!(
            "{:>12} {:>12} {:>10} {:>22.3e} {:>9}",
            c.as_u64(),
            config.horizon().as_u64(),
            allocation.nu(ddcr_sim::SourceId(0)),
            tightest.slack(),
            report.feasible()
        );
        if report.feasible() && accepted.is_none() {
            accepted = Some((config, allocation, report));
        }
    }

    let (config, allocation, report) =
        accepted.expect("at least one dimensioning must be provable");
    println!(
        "\naccepted dimensioning: c = {}, horizon = {}",
        config.class_width,
        config.horizon()
    );
    print_feasibility(&report);

    // Worst-case drill: full peak load on every class, with the alert
    // burst landing exactly when the channel is already saturated.
    let schedule = ScheduleBuilder::peak_load(&set).build(Ticks(40_000_000))?;
    let n = schedule.len();
    let stats = network::run(
        &set,
        schedule,
        &config,
        &allocation,
        medium,
        network::RunLimit::Completion(Ticks(10_000_000_000)),
    )?;
    println!("\nworst-case drill ({n} messages, alert bursts phase-aligned with weather bulk):");
    print_run("atc peak load", &stats);

    // Alert-specific accounting: the 100 µs class must be spotless.
    let alert_ids: Vec<_> = set
        .classes()
        .iter()
        .filter(|c| c.name.starts_with("alert"))
        .map(|c| c.id)
        .collect();
    let mut worst_alert = Ticks::ZERO;
    for d in &stats.deliveries {
        if alert_ids.contains(&d.message.class) {
            assert!(d.deadline_met(), "an alert missed its deadline");
            worst_alert = worst_alert.max(d.latency());
        }
    }
    let alert_deadline = set
        .classes()
        .iter()
        .find(|c| c.name.starts_with("alert"))
        .expect("alert class")
        .deadline;
    println!(
        "worst conflict-alert latency: {} ticks (deadline {} ticks) — guarantee held",
        worst_alert.as_u64(),
        alert_deadline.as_u64()
    );
    Ok(())
}
