//! CSMA/DDCR inside an ATM switch fabric — the §3.2/§5 variant.
//!
//! Busses internal to ATM nodes have slot times of a few bit times and can
//! implement exclusive-OR logic, making collisions non-destructive
//! (bit-level arbitration). The same protocol code runs on both media;
//! this example carries 48-byte ATM cells with cell-scale deadlines across
//! the fabric and compares the destructive and arbitrating variants.
//!
//! ```text
//! cargo run -p ddcr-examples --example atm_fabric
//! ```

use ddcr_core::{feasibility, network, DdcrConfig, StaticAllocation};
use ddcr_examples::{print_feasibility, print_run};
use ddcr_sim::{CollisionMode, MediumConfig, Ticks};
use ddcr_traffic::{scenario, ScheduleBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ports = 16u32;
    // 48-byte cell payloads, 20 µs cell deadlines, half the fabric loaded.
    let set = scenario::uniform(ports, 48 * 8, Ticks(20_000), 0.5)?;
    let arbitrating = MediumConfig::atm_internal_bus();
    let destructive = MediumConfig {
        collision_mode: CollisionMode::Destructive,
        ..arbitrating
    };
    println!(
        "ATM fabric: {ports} ports, 48-byte cells, 20 us deadlines, slot = {} bit times",
        arbitrating.slot_ticks
    );

    // Cell-scale deadline classes: c = one slot batch of cells.
    let c = network::recommended_class_width(&set, 64, &arbitrating);
    let config = DdcrConfig::for_sources(ports, c)?;
    let allocation = StaticAllocation::one_per_source(config.static_tree, ports)?;
    let report = feasibility::evaluate(&set, &config, &allocation, &arbitrating)?;
    println!();
    print_feasibility(&report);

    let schedule = ScheduleBuilder::peak_load(&set).build(Ticks(500_000))?;
    println!("\npeak load, {} cells:", schedule.len());
    for (label, medium) in [
        ("atm arbitrating (XOR bus)", arbitrating),
        ("atm destructive", destructive),
    ] {
        let stats = network::run(
            &set,
            schedule.clone(),
            &config,
            &allocation,
            medium,
            network::RunLimit::Completion(Ticks(1_000_000_000)),
        )?;
        print_run(label, &stats);
        assert_eq!(stats.deadline_misses(), 0, "{label} missed a cell deadline");
    }
    println!(
        "\nsame protocol, same analysis — only the slot time and collision semantics \
         change, which is the paper's §5 applicability argument."
    );
    Ok(())
}
