//! Quickstart: the whole pipeline in ~60 lines.
//!
//! 1. Describe an HRTDM instance (sources, message classes, density
//!    bounds, hard deadlines).
//! 2. Configure CSMA/DDCR and *prove* feasibility with the §4.3 conditions.
//! 3. Simulate the adversarial peak-load workload and watch the proof hold.
//!
//! ```text
//! cargo run -p ddcr-examples --example quickstart
//! ```

use ddcr_core::{feasibility, network, DdcrConfig, StaticAllocation};
use ddcr_examples::{print_feasibility, print_run};
use ddcr_sim::{MediumConfig, Ticks};
use ddcr_traffic::{scenario, validate, ScheduleBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1 — the problem: 8 stations on a shared 1 Gbit/s broadcast LAN, each
    // sending 1 kB messages with a 5 ms hard deadline, 30 % total load.
    let set = scenario::uniform(8, 8_000, Ticks(5_000_000), 0.3)?;
    println!(
        "HRTDM instance: {} sources, {} classes, offered load {:.2}",
        set.sources(),
        set.classes().len(),
        set.offered_load()
    );

    // 2 — the solution: CSMA/DDCR dimensioned for this instance.
    let medium = MediumConfig::ethernet();
    let class_width = network::recommended_class_width(&set, 64, &medium);
    let config = DdcrConfig::for_sources(set.sources(), class_width)?;
    let allocation = StaticAllocation::round_robin(config.static_tree, set.sources())?;
    println!(
        "CSMA/DDCR: time tree {}, static tree {}, class width c = {}, horizon c·F = {}",
        config.time_tree,
        config.static_tree,
        config.class_width,
        config.horizon()
    );

    // …and its proof obligation: the feasibility conditions of §4.3.
    let report = feasibility::evaluate(&set, &config, &allocation, &medium)?;
    print_feasibility(&report);

    // 3 — adversarial validation: peak-load bursts, the worst traffic the
    // density bounds allow (and exactly what the FCs are proved against).
    let schedule = ScheduleBuilder::peak_load(&set).build(Ticks(10_000_000))?;
    validate::check_schedule(&set, &schedule)?; // it is legal traffic
    println!("\nsimulating {} peak-load messages …", schedule.len());
    let stats = network::run(
        &set,
        schedule,
        &config,
        &allocation,
        medium,
        network::RunLimit::Completion(Ticks(1_000_000_000)),
    )?;
    print_run("ddcr under peak load", &stats);
    assert_eq!(
        stats.deadline_misses(),
        0,
        "the feasibility conditions guarantee zero misses"
    );
    println!("proof held: zero deadline misses under the worst legal arrival pattern");
    Ok(())
}
