//! On-line transactions (stock market) — the bursty application of §2.1:
//! order bursts of 10 messages per millisecond per gateway.
//!
//! This example contrasts CSMA/DDCR with the stochastic 802.3 MAC on the
//! *same* workload: the deterministic protocol keeps the 500 µs order
//! deadline through the bursts; binary exponential backoff produces a
//! heavy latency tail and misses. It also shows a friendlier
//! density-respecting random workload, where both protocols look fine on
//! average — exactly the trap the paper warns about: average-case
//! measurements say nothing about the worst case.
//!
//! ```text
//! cargo run -p ddcr-examples --example stock_exchange
//! ```

use ddcr_baseline::{CsmaCdStation, QueueDiscipline};
use ddcr_core::{network, DdcrConfig, StaticAllocation};
use ddcr_examples::print_run;
use ddcr_sim::{Engine, MediumConfig, SourceId, Ticks};
use ddcr_traffic::{scenario, validate, ScheduleBuilder};

fn run_csma_cd(
    set: &ddcr_traffic::MessageSet,
    schedule: &[ddcr_sim::Message],
    medium: MediumConfig,
) -> Result<ddcr_sim::ChannelStats, Box<dyn std::error::Error>> {
    let mut engine = Engine::new(medium)?;
    for i in 0..set.sources() {
        engine.add_station(Box::new(CsmaCdStation::new(
            SourceId(i),
            medium,
            QueueDiscipline::Edf,
            2024,
        )));
    }
    engine.add_arrivals(schedule.to_vec())?;
    // BEB may drop frames; completion is still reached once queues drain.
    engine.run_to_completion(Ticks(100_000_000_000))?;
    Ok(engine.into_stats())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let z = 6u32;
    let set = scenario::stock_exchange(z)?;
    let medium = MediumConfig::gigabit_ethernet();
    let c = network::recommended_class_width(&set, 64, &medium);
    let config = DdcrConfig::for_sources(z, c)?;
    let allocation = StaticAllocation::round_robin(config.static_tree, z)?;
    println!(
        "stock exchange: {z} gateways, load {:.3}, order bursts a=10 per ms, d = 500 us",
        set.offered_load()
    );

    // Scenario A: the adversary — synchronized opening-bell bursts.
    let burst_schedule = ScheduleBuilder::peak_load(&set).build(Ticks(8_000_000))?;
    validate::check_schedule(&set, &burst_schedule)?;
    println!(
        "\nA) opening bell: {} messages in phase-aligned bursts",
        burst_schedule.len()
    );
    let ddcr = network::run(
        &set,
        burst_schedule.clone(),
        &config,
        &allocation,
        medium,
        network::RunLimit::Completion(Ticks(100_000_000_000)),
    )?;
    print_run("ddcr", &ddcr);
    let beb = run_csma_cd(&set, &burst_schedule, medium)?;
    print_run("csma-cd/bep (edf queue)", &beb);
    println!(
        "misses: ddcr {} vs csma-cd {} — determinism pays exactly when it matters",
        ddcr.deadline_misses(),
        beb.deadline_misses() + (burst_schedule.len() - beb.deliveries.len())
    );
    assert_eq!(ddcr.deadline_misses(), 0);

    // Scenario B: a quiet afternoon — random traffic at 40 % of the bounds.
    let calm_schedule = ScheduleBuilder::bounded_random(&set, 0.4, 7)?.build(Ticks(8_000_000))?;
    validate::check_schedule(&set, &calm_schedule)?;
    println!("\nB) quiet tape: {} density-respecting random messages", calm_schedule.len());
    let ddcr_calm = network::run(
        &set,
        calm_schedule.clone(),
        &config,
        &allocation,
        medium,
        network::RunLimit::Completion(Ticks(100_000_000_000)),
    )?;
    print_run("ddcr", &ddcr_calm);
    let beb_calm = run_csma_cd(&set, &calm_schedule, medium)?;
    print_run("csma-cd/bep (edf queue)", &beb_calm);
    println!(
        "both near-perfect on calm traffic — which is why average-case benchmarks \
         cannot certify a hard real-time network (the paper's §2.2 point)."
    );
    Ok(())
}
