//! Videoconferencing over a shared gigabit broadcast LAN — the
//! "distributed interactive multimedia" application of §2.1.
//!
//! Each participant station carries a video stream (bursty 1500-byte
//! fragments, 2 ms deadline), a low-latency audio stream (125 µs cadence,
//! 500 µs deadline) and floor-control messages. The example dimensions
//! CSMA/DDCR for a growing number of participants, finds where the
//! feasibility conditions stop holding, and cross-checks a feasible and an
//! infeasible point in simulation.
//!
//! ```text
//! cargo run -p ddcr-examples --example videoconference
//! ```

use ddcr_core::{feasibility, network, DdcrConfig, StaticAllocation};
use ddcr_examples::{print_feasibility, print_run};
use ddcr_sim::{MediumConfig, Ticks};
use ddcr_traffic::{scenario, ScheduleBuilder};

fn setup(z: u32) -> Result<
    (
        ddcr_traffic::MessageSet,
        DdcrConfig,
        StaticAllocation,
        MediumConfig,
    ),
    Box<dyn std::error::Error>,
> {
    let set = scenario::videoconference(z)?;
    let medium = MediumConfig::gigabit_ethernet();
    let c = network::recommended_class_width(&set, 64, &medium);
    let config = DdcrConfig::for_sources(z, c)?;
    let allocation = StaticAllocation::round_robin(config.static_tree, z)?;
    Ok((set, config, allocation, medium))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("How many participants can one gigabit broadcast segment carry?");
    println!(
        "{:>13} {:>8} {:>22} {:>9}",
        "participants", "load", "tightest class slack", "feasible"
    );
    let mut last_feasible = None;
    let mut first_infeasible = None;
    for z in [2u32, 4, 8, 12, 16, 20, 24] {
        let (set, config, allocation, medium) = setup(z)?;
        let report = feasibility::evaluate(&set, &config, &allocation, &medium)?;
        let tightest = report.tightest().expect("classes");
        println!(
            "{:>13} {:>8.3} {:>22.3e} {:>9}",
            z,
            set.offered_load(),
            tightest.slack(),
            report.feasible()
        );
        if report.feasible() {
            last_feasible = Some(z);
        } else if first_infeasible.is_none() {
            first_infeasible = Some(z);
        }
    }

    let ok_z = last_feasible.expect("some size must be feasible");
    println!("\n--- dimensioning accepted: {ok_z} participants ---");
    let (set, config, allocation, medium) = setup(ok_z)?;
    let report = feasibility::evaluate(&set, &config, &allocation, &medium)?;
    print_feasibility(&report);

    // Validate the accepted dimensioning against adversarial peak load.
    let schedule = ScheduleBuilder::peak_load(&set).build(Ticks(20_000_000))?;
    let n = schedule.len();
    let stats = network::run(
        &set,
        schedule,
        &config,
        &allocation,
        medium,
        network::RunLimit::Completion(Ticks(10_000_000_000)),
    )?;
    println!("\npeak-load validation ({n} messages):");
    print_run(&format!("videoconference z={ok_z}"), &stats);
    assert_eq!(stats.deadline_misses(), 0, "accepted dimensioning must hold");

    if let Some(bad_z) = first_infeasible {
        println!(
            "\n--- {bad_z} participants rejected by the FCs (worst case may miss) ---"
        );
        let (set, config, allocation, medium) = setup(bad_z)?;
        let report = feasibility::evaluate(&set, &config, &allocation, &medium)?;
        let tightest = report.tightest().expect("classes");
        println!(
            "binding constraint: class {} at {} — bound {:.0} ticks vs deadline {} ticks",
            tightest.class,
            tightest.source,
            tightest.bound,
            tightest.deadline.as_u64()
        );
        println!(
            "note: the FCs are sufficient, not necessary — a rejected size may still run \
             miss-free on many traces, but no guarantee can be given."
        );
    }
    Ok(())
}
