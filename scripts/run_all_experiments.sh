#!/usr/bin/env bash
# Regenerates every figure and experiment of the paper (E1-E14).
# Results land in results/*.csv; each binary also prints the series and an
# ASCII rendition of the figure, and asserts the paper's claims hold.
set -euo pipefail
cd "$(dirname "$0")/.."
bins=(fig1 fig2 exp_identities exp_tightness exp_multitree exp_optimal_m
      exp_fc_validation exp_baselines exp_theta exp_atm exp_bursting
      exp_achievability exp_efficiency exp_multibus exp_model_check
      exp_realism)
for bin in "${bins[@]}"; do
  echo "=== $bin ==="
  cargo run --release -q -p ddcr-bench --bin "$bin"
  echo
done
echo "all experiments reproduced; CSVs in results/"
