//! Multichannel engine integration tests: a C=1 multichannel run is the
//! single-bus engine, bit for bit, for every protocol and collision mode;
//! and channel projections partition the message set exactly — classes
//! and scheduled messages alike.

use ddcr_baseline::QueueDiscipline;
use ddcr_core::{multibus, network, DdcrError};
use ddcr_integration::ddcr_setup;
use ddcr_sim::{CollisionMode, Engine, MediumConfig, SourceId, Ticks};
use ddcr_traffic::{scenario, MessageSet, ScheduleBuilder};
use proptest::prelude::*;

const BUDGET: Ticks = Ticks(200_000_000_000);

fn workload(z: u32, medium: &MediumConfig) -> (MessageSet, Vec<ddcr_sim::Message>) {
    let set = scenario::videoconference(z).expect("scenario");
    let schedule = ScheduleBuilder::peak_load(&set)
        .build(Ticks(6_000_000))
        .expect("schedule");
    let _ = medium;
    (set, schedule)
}

/// Engine builders for every protocol the simulator hosts (np-edf is an
/// analytic oracle without an engine, so it has no channel projection).
fn build_protocol(
    protocol: &str,
    set: &MessageSet,
    medium: MediumConfig,
) -> Result<Engine, DdcrError> {
    match protocol {
        "ddcr" => {
            let (config, allocation) = ddcr_setup(set, &medium);
            network::build_engine(set, &config, &allocation, medium)
        }
        "csma-cd" => {
            let mut engine =
                Engine::new(medium).map_err(|e| DdcrError::InvalidConfig(e.to_string()))?;
            for i in 0..set.sources() {
                engine.add_station(Box::new(ddcr_baseline::CsmaCdStation::new(
                    SourceId(i),
                    medium,
                    QueueDiscipline::Edf,
                    7,
                )));
            }
            Ok(engine)
        }
        "dcr" => {
            let mut engine =
                Engine::new(medium).map_err(|e| DdcrError::InvalidConfig(e.to_string()))?;
            for i in 0..set.sources() {
                engine.add_station(Box::new(
                    ddcr_baseline::DcrStation::new(
                        SourceId(i),
                        set.sources(),
                        medium,
                        QueueDiscipline::Edf,
                    )
                    .map_err(|e| DdcrError::InvalidConfig(e.to_string()))?,
                ));
            }
            Ok(engine)
        }
        other => panic!("unknown protocol {other}"),
    }
}

/// The heart of the determinism contract: for every protocol and both
/// collision semantics, running the whole set through the multichannel
/// engine at C=1 produces exactly the stats, metrics, and trace bytes of
/// the plain single-bus engine.
#[test]
fn single_channel_matches_single_bus_for_all_protocols_and_modes() {
    for mode in [CollisionMode::Destructive, CollisionMode::Arbitrating] {
        let mut medium = MediumConfig::gigabit_ethernet();
        medium.collision_mode = mode;
        for protocol in ["ddcr", "csma-cd", "dcr"] {
            let (set, schedule) = workload(6, &medium);
            let assignment = multibus::balance_by_load(&set, 1);
            let mut options = multibus::RunOptions::new(BUDGET);
            options.metrics = true;
            options.trace = true;
            let report = multibus::run_channels_with(
                &set,
                schedule.clone(),
                &assignment,
                &options,
                &|_, projected| build_protocol(protocol, projected, medium),
            )
            .expect("multichannel run");
            assert_eq!(report.channels.len(), 1);

            // The plain single-bus engine with identical instrumentation.
            let mut engine = build_protocol(protocol, &set, medium).expect("engine");
            engine.enable_metrics();
            let buf = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
            struct Shared(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
            impl std::io::Write for Shared {
                fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                    self.0.lock().unwrap().extend_from_slice(data);
                    Ok(data.len())
                }
                fn flush(&mut self) -> std::io::Result<()> {
                    Ok(())
                }
            }
            engine.set_trace_sink(ddcr_sim::JsonlSink::new(Box::new(Shared(buf.clone()))));
            engine.add_arrivals(schedule).expect("arrivals");
            let completed = engine.run_to_completion(BUDGET).is_ok();
            let metrics = engine.take_metrics();
            engine.take_trace_sink().expect("sink").finish().expect("finish");
            let stats = engine.into_stats();

            let outcome = &report.channels[0];
            assert_eq!(outcome.completed, completed, "{protocol}/{mode:?}");
            assert_eq!(outcome.stats, stats, "{protocol}/{mode:?}: stats diverge");
            assert_eq!(
                format!("{:?}", outcome.metrics),
                format!("{metrics:?}"),
                "{protocol}/{mode:?}: metrics diverge"
            );
            let mut doc = Vec::new();
            report.write_trace(&mut doc).expect("trace doc");
            assert_eq!(
                doc,
                *buf.lock().unwrap(),
                "{protocol}/{mode:?}: trace bytes diverge"
            );
        }
    }
}

/// And the parallel path must agree with the serial path for non-DDCR
/// builders too — the pool is protocol-agnostic.
#[test]
fn worker_pool_is_protocol_agnostic() {
    let medium = MediumConfig::gigabit_ethernet();
    let (set, schedule) = workload(8, &medium);
    let assignment = multibus::balance_by_load(&set, 3);
    for protocol in ["csma-cd", "dcr"] {
        let run = |workers: usize| {
            let mut options = multibus::RunOptions::new(BUDGET);
            options.workers = workers;
            multibus::run_channels_with(
                &set,
                schedule.clone(),
                &assignment,
                &options,
                &|_, projected| build_protocol(protocol, projected, medium),
            )
            .expect("run")
        };
        let serial = run(1);
        let parallel = run(4);
        for (a, b) in serial.channels.iter().zip(&parallel.channels) {
            assert_eq!(a.stats, b.stats, "{protocol}: worker count leaked into results");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Channel projections partition the message set exactly: every class
    /// lands on exactly one channel, projected class sets are disjoint,
    /// and splitting a schedule loses or duplicates no message.
    #[test]
    fn projections_partition_messages_exactly(
        z in 2u32..10,
        channels in 1usize..5,
        horizon_ms in 2u64..8,
    ) {
        let set = scenario::videoconference(z).expect("scenario");
        let assignment = multibus::balance_by_load(&set, channels);
        let mut seen = std::collections::BTreeSet::new();
        let mut total = 0usize;
        for channel in 0..channels {
            let projected = assignment.project(&set, channel).unwrap();
            prop_assert_eq!(projected.sources(), set.sources());
            for class in projected.classes() {
                prop_assert!(seen.insert(class.id), "class on two channels");
                prop_assert_eq!(assignment.channel_of(class.id), channel);
            }
            total += projected.classes().len();
        }
        prop_assert_eq!(total, set.classes().len());

        let schedule = ScheduleBuilder::peak_load(&set)
            .build(Ticks(horizon_ms * 1_000_000))
            .expect("schedule");
        let n = schedule.len();
        let ids: std::collections::BTreeSet<_> =
            schedule.iter().map(|m| m.id).collect();
        let split = assignment.split_schedule(schedule);
        prop_assert_eq!(split.len(), channels);
        let routed: usize = split.iter().map(Vec::len).sum();
        prop_assert_eq!(routed, n, "messages lost or duplicated in the split");
        let mut routed_ids = std::collections::BTreeSet::new();
        for (channel, messages) in split.iter().enumerate() {
            for message in messages {
                prop_assert_eq!(assignment.channel_of(message.class), channel);
                routed_ids.insert(message.id);
            }
        }
        prop_assert_eq!(routed_ids, ids);
    }
}
