//! Membership equivalence and semantics at the engine level: scheduled
//! joins and leaves must be processed at exactly their decision-slot
//! ordinals under every fast-forward tier — the 2⁴ switch matrix
//! (idle × busy × contention × active-set) and both collision modes must
//! be bitwise indistinguishable from the reference stepper — and the
//! empty plan must be invisible. Membership changes mutate the active-set
//! scheduler's wake index (every parked station wakes and replays its
//! catch-up log), so the matrix exercises that interaction directly.

use ddcr_core::{DdcrConfig, DdcrStation, StaticAllocation};
use ddcr_sim::{
    ClassId, CollisionMode, Engine, FaultEvent, FaultKind, FaultPlan, MediumConfig, MembershipEvent,
    MembershipChange, MembershipPlan, Message, MessageId, SourceId, Ticks, Trace, TraceEvent,
};
use proptest::prelude::*;

type Steppers = (bool, bool, bool, bool);

const REFERENCE: Steppers = (false, false, false, false);
const OPTIMIZED: [Steppers; 15] = [
    (true, true, true, true),
    (true, true, true, false),
    (true, true, false, true),
    (true, false, true, true),
    (false, true, true, true),
    (true, true, false, false),
    (true, false, true, false),
    (false, true, true, false),
    (true, false, false, true),
    (false, true, false, true),
    (false, false, true, true),
    (true, false, false, false),
    (false, true, false, false),
    (false, false, true, false),
    (false, false, false, true),
];

fn build_engine(z: u32, medium: MediumConfig, steppers: Steppers) -> Engine {
    let mut engine = Engine::new(medium).unwrap();
    engine.set_fast_forward(steppers.0);
    engine.set_busy_fast_forward(steppers.1);
    engine.set_contention_fast_forward(steppers.2);
    engine.set_active_set(steppers.3);
    engine.set_trace(Trace::enabled());
    let config = DdcrConfig::for_sources(z, Ticks(100_000)).unwrap();
    let allocation = StaticAllocation::one_per_source(config.static_tree, z).unwrap();
    for i in 0..z {
        engine.add_station(Box::new(
            DdcrStation::new(SourceId(i), config, allocation.clone(), medium.overhead_bits)
                .unwrap(),
        ));
    }
    engine
}

#[derive(Debug, PartialEq)]
struct RunDigest {
    now: Ticks,
    events: Vec<TraceEvent>,
    stats: ddcr_sim::ChannelStats,
}

fn run_with_membership(
    z: u32,
    medium: MediumConfig,
    arrivals: &[Message],
    steppers: Steppers,
    membership: &MembershipPlan,
    faults: Option<&FaultPlan>,
) -> RunDigest {
    let mut engine = build_engine(z, medium, steppers);
    engine.set_membership_plan(membership.clone()).unwrap();
    if let Some(plan) = faults {
        engine.set_fault_plan(plan.clone());
    }
    engine.add_arrivals(arrivals.iter().copied()).unwrap();
    let _ = engine.run_to_completion(Ticks(60_000_000));
    RunDigest {
        now: engine.now(),
        events: engine.trace().events().to_vec(),
        stats: engine.into_stats(),
    }
}

fn make_arrivals(raw: &[(u32, u64, u64)], z: u32, bits: u64) -> Vec<Message> {
    let mut at = 0u64;
    raw.iter()
        .enumerate()
        .map(|(i, &(source, gap, deadline))| {
            at += gap;
            Message {
                id: MessageId(i as u64),
                source: SourceId(source % z),
                class: ClassId(0),
                bits,
                arrival: Ticks(at),
                deadline: Ticks(deadline),
            }
        })
        .collect()
}

fn make_plan(raw: &[(u64, bool, u32)], z: u32, absent: &[u32]) -> MembershipPlan {
    let events = raw
        .iter()
        .map(|&(slot, join, station)| MembershipEvent {
            slot,
            change: if join {
                MembershipChange::Join { station: station % z }
            } else {
                MembershipChange::Leave { station: station % z }
            },
        })
        .collect();
    let absent = absent.iter().map(|&s| s % z).collect();
    MembershipPlan::from_events(absent, events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The central property: a membership schedule lands on exactly the
    /// same decision slots under every fast-forward tier, so every
    /// observable — trace (including Joined/Left annotations), statistics,
    /// lost set, final clock — agrees bitwise with the reference stepper.
    #[test]
    fn membership_schedule_matches_reference(
        z in 2u32..6,
        raw in prop::collection::vec(
            (0u32..8, 0u64..600_000, 300_000u64..9_000_000),
            1..16,
        ),
        raw_plan in prop::collection::vec(
            (0u64..64, any::<bool>(), 0u32..8),
            1..6,
        ),
        arbitrating in any::<bool>(),
    ) {
        let mut medium = MediumConfig::ethernet();
        medium.collision_mode = if arbitrating {
            CollisionMode::Arbitrating
        } else {
            CollisionMode::Destructive
        };
        let arrivals = make_arrivals(&raw, z, 4_000);
        let plan = make_plan(&raw_plan, z, &[]);
        let reference =
            run_with_membership(z, medium, &arrivals, REFERENCE, &plan, None);
        for steppers in OPTIMIZED {
            let fast =
                run_with_membership(z, medium, &arrivals, steppers, &plan, None);
            prop_assert_eq!(&fast, &reference, "steppers={:?}", steppers);
        }
    }

    /// Membership interleaved with channel faults and crashes: the two
    /// fencing mechanisms (fault ordinals and membership ordinals) must
    /// compose under every tier without disturbing each other.
    #[test]
    fn membership_composes_with_faults_under_every_tier(
        z in 2u32..5,
        raw in prop::collection::vec(
            (0u32..8, 0u64..3_000, 300_000u64..9_000_000),
            1..16,
        ),
        raw_plan in prop::collection::vec(
            (0u64..48, any::<bool>(), 0u32..8),
            1..4,
        ),
        raw_faults in prop::collection::vec(
            (0u64..48, 0usize..3, 0u32..8, 1u64..6),
            1..4,
        ),
        arbitrating in any::<bool>(),
    ) {
        let mut medium = MediumConfig::ethernet();
        medium.collision_mode = if arbitrating {
            CollisionMode::Arbitrating
        } else {
            CollisionMode::Destructive
        };
        let arrivals = make_arrivals(&raw, z, 1_000);
        let plan = make_plan(&raw_plan, z, &[]);
        let events: Vec<FaultEvent> = raw_faults
            .iter()
            .map(|&(slot, kind, station, down_slots)| FaultEvent {
                slot,
                kind: match kind {
                    0 => FaultKind::CorruptSlot,
                    1 => FaultKind::EraseFrame,
                    _ => FaultKind::Crash { station: station % z, down_slots },
                },
            })
            .collect();
        let faults = FaultPlan::from_events(events);
        let reference = run_with_membership(
            z, medium, &arrivals, REFERENCE, &plan, Some(&faults),
        );
        for steppers in OPTIMIZED {
            let fast = run_with_membership(
                z, medium, &arrivals, steppers, &plan, Some(&faults),
            );
            prop_assert_eq!(&fast, &reference, "steppers={:?}", steppers);
        }
    }

    /// The empty membership plan is bitwise invisible: an engine carrying
    /// `MembershipPlan::none()` is indistinguishable from one that never
    /// heard of membership, under both the reference and optimized tiers.
    #[test]
    fn empty_membership_plan_is_bitwise_invisible(
        z in 2u32..6,
        raw in prop::collection::vec(
            (0u32..8, 0u64..600_000, 300_000u64..9_000_000),
            0..12,
        ),
        arbitrating in any::<bool>(),
    ) {
        let mut medium = MediumConfig::ethernet();
        medium.collision_mode = if arbitrating {
            CollisionMode::Arbitrating
        } else {
            CollisionMode::Destructive
        };
        let arrivals = make_arrivals(&raw, z, 4_000);
        for steppers in [REFERENCE, (true, true, true, true)] {
            let mut bare = build_engine(z, medium, steppers);
            bare.add_arrivals(arrivals.iter().copied()).unwrap();
            let _ = bare.run_to_completion(Ticks(60_000_000));
            let bare = RunDigest {
                now: bare.now(),
                events: bare.trace().events().to_vec(),
                stats: bare.into_stats(),
            };
            let with_plan = run_with_membership(
                z, medium, &arrivals, steppers, &MembershipPlan::none(), None,
            );
            prop_assert_eq!(&with_plan, &bare, "steppers={:?}", steppers);
        }
    }
}

/// Deterministic semantics spot check: a leave loses the station's queue
/// (recorded lost, counted in stats), a rejoin resynchronizes it, and the
/// trace carries the Joined/Left annotations at the transition instants.
#[test]
fn leave_loses_queue_and_rejoin_resynchronizes() {
    let z = 3u32;
    let medium = MediumConfig::ethernet();
    // Station 1 has a message queued at t=0 and another arriving late —
    // after its leave — plus traffic from the survivors throughout.
    let arrivals = [
        Message {
            id: MessageId(0),
            source: SourceId(1),
            class: ClassId(0),
            bits: 4_000,
            arrival: Ticks(0),
            deadline: Ticks(8_000_000),
        },
        Message {
            id: MessageId(1),
            source: SourceId(0),
            class: ClassId(0),
            bits: 4_000,
            arrival: Ticks(0),
            deadline: Ticks(8_000_000),
        },
        Message {
            id: MessageId(2),
            source: SourceId(1),
            class: ClassId(0),
            bits: 4_000,
            arrival: Ticks(20_000),
            deadline: Ticks(8_000_000),
        },
        Message {
            id: MessageId(3),
            source: SourceId(2),
            class: ClassId(0),
            bits: 4_000,
            arrival: Ticks(400_000),
            deadline: Ticks(8_000_000),
        },
    ];
    // Leave before station 1 can win a slot; rejoin only after its second
    // arrival has landed while absent (slot 50 ≥ 50 × 512 ticks > 20_000),
    // with survivor traffic still to come for the resync anchor.
    let plan = MembershipPlan::leave_then_rejoin(1, 0, 50);
    let mut engine = build_engine(z, medium, (true, true, true, true));
    engine.set_membership_plan(plan).unwrap();
    engine.add_arrivals(arrivals.iter().copied()).unwrap();
    engine.run_to_completion(Ticks(60_000_000)).unwrap();
    let joined: Vec<&TraceEvent> = engine
        .trace()
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Joined { .. }))
        .collect();
    let left: Vec<&TraceEvent> = engine
        .trace()
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Left { .. }))
        .collect();
    assert_eq!(left.len(), 1, "exactly one Left annotation");
    assert_eq!(joined.len(), 1, "exactly one Joined annotation");
    assert!(!engine.is_absent(1), "station 1 rejoined");
    let stats = engine.into_stats();
    assert_eq!(stats.leaves, 1);
    assert_eq!(stats.joins, 1);
    // The t=0 queue of station 1 was lost at the leave; its post-leave
    // arrival (t=20_000, while absent) is lost too.
    let lost: Vec<u64> = stats.lost.iter().map(|m| m.id.0).collect();
    assert!(lost.contains(&0), "queued message lost at the leave: {lost:?}");
    assert!(lost.contains(&2), "arrival while absent is lost: {lost:?}");
    // Survivors' traffic (and nothing lost) was delivered.
    let delivered: Vec<u64> = stats.deliveries.iter().map(|d| d.message.id.0).collect();
    assert!(delivered.contains(&1));
    assert!(delivered.contains(&3));
    assert!(!delivered.contains(&0), "lost message delivered");
}

/// A station listed initially absent never transmits until joined; its
/// arrivals before the join are lost.
#[test]
fn initially_absent_station_is_fenced_until_joined() {
    let z = 2u32;
    let medium = MediumConfig::ethernet();
    let arrivals = [
        Message {
            id: MessageId(0),
            source: SourceId(1),
            class: ClassId(0),
            bits: 4_000,
            arrival: Ticks(0),
            deadline: Ticks(8_000_000),
        },
        Message {
            id: MessageId(1),
            source: SourceId(0),
            class: ClassId(0),
            bits: 4_000,
            arrival: Ticks(0),
            deadline: Ticks(8_000_000),
        },
    ];
    let plan = MembershipPlan::from_events(vec![1], Vec::new());
    let mut engine = build_engine(z, medium, (true, true, true, true));
    engine.set_membership_plan(plan).unwrap();
    assert!(engine.is_absent(1));
    engine.add_arrivals(arrivals.iter().copied()).unwrap();
    engine.run_to_completion(Ticks(60_000_000)).unwrap();
    assert!(engine.is_absent(1), "no join was scheduled");
    let stats = engine.into_stats();
    let lost: Vec<u64> = stats.lost.iter().map(|m| m.id.0).collect();
    assert_eq!(lost, vec![0], "absent station's arrival is lost");
    let delivered: Vec<u64> = stats.deliveries.iter().map(|d| d.message.id.0).collect();
    assert_eq!(delivered, vec![1]);
}

/// A plan naming a station outside the fabric is a typed error, not a
/// panic or a silent clamp.
#[test]
fn out_of_range_plan_is_rejected() {
    let medium = MediumConfig::ethernet();
    let mut engine = build_engine(2, medium, (true, true, true, true));
    let err = engine
        .set_membership_plan(MembershipPlan::leave_then_rejoin(7, 1, 5))
        .map(|_| ())
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains('7'), "error names the bad station: {msg}");
}
