//! End-to-end integration: traffic generation → protocol simulation →
//! metric collection, across all the crates together.

use ddcr_integration::{ddcr_setup, run_ddcr};
use ddcr_sim::{MediumConfig, Ticks};
use ddcr_traffic::{scenario, validate, ScheduleBuilder};

#[test]
fn every_scenario_preset_drains_under_peak_load() {
    let medium = MediumConfig::gigabit_ethernet();
    let sets = [
        ("videoconference", scenario::videoconference(4).unwrap()),
        ("air_traffic_control", scenario::air_traffic_control(4).unwrap()),
        ("stock_exchange", scenario::stock_exchange(4).unwrap()),
        ("manufacturing_cell", scenario::manufacturing_cell(4).unwrap()),
    ];
    for (name, set) in sets {
        let horizon = Ticks(4_000_000);
        let schedule = ScheduleBuilder::peak_load(&set).build(horizon).unwrap();
        validate::check_schedule(&set, &schedule).unwrap();
        let n = schedule.len();
        assert!(n > 0, "{name}: empty schedule");
        let stats = run_ddcr(&set, schedule, medium);
        assert_eq!(stats.deliveries.len(), n, "{name}: lost messages");
    }
}

#[test]
fn bounded_random_traffic_is_legal_and_drains() {
    let medium = MediumConfig::ethernet();
    let set = scenario::uniform(6, 8_000, Ticks(4_000_000), 0.4).unwrap();
    for seed in [1u64, 2, 3] {
        let schedule = ScheduleBuilder::bounded_random(&set, 0.8, seed)
            .unwrap()
            .build(Ticks(10_000_000))
            .unwrap();
        validate::check_schedule(&set, &schedule).unwrap();
        let n = schedule.len();
        let stats = run_ddcr(&set, schedule, medium);
        assert_eq!(stats.deliveries.len(), n, "seed {seed}");
    }
}

#[test]
fn per_message_latency_is_consistent() {
    let medium = MediumConfig::ethernet();
    let set = scenario::uniform(4, 8_000, Ticks(5_000_000), 0.3).unwrap();
    let schedule = ScheduleBuilder::peak_load(&set).build(Ticks(5_000_000)).unwrap();
    let stats = run_ddcr(&set, schedule, medium);
    for d in &stats.deliveries {
        // Completion after arrival, by at least the wire time.
        let wire = d.message.bits + medium.overhead_bits;
        assert!(d.completed_at >= d.message.arrival + Ticks(wire));
        assert_eq!(d.latency(), d.completed_at - d.message.arrival);
    }
    // Deliveries are reported in completion order.
    assert!(stats
        .deliveries
        .windows(2)
        .all(|p| p[0].completed_at <= p[1].completed_at));
}

#[test]
fn utilization_matches_delivered_bits() {
    let medium = MediumConfig::ethernet();
    let set = scenario::uniform(4, 8_000, Ticks(5_000_000), 0.3).unwrap();
    let schedule = ScheduleBuilder::peak_load(&set).build(Ticks(5_000_000)).unwrap();
    let stats = run_ddcr(&set, schedule, medium);
    let wire_total: u64 = stats
        .deliveries
        .iter()
        .map(|d| d.message.bits + medium.overhead_bits)
        .sum();
    assert_eq!(stats.busy_ticks, Ticks(wire_total));
}

#[test]
fn feasibility_report_covers_every_class() {
    let medium = MediumConfig::gigabit_ethernet();
    let set = scenario::videoconference(6).unwrap();
    let (config, allocation) = ddcr_setup(&set, &medium);
    let report =
        ddcr_core::feasibility::evaluate(&set, &config, &allocation, &medium).unwrap();
    assert_eq!(report.per_class.len(), set.classes().len());
    for (c, class) in report.per_class.iter().zip(set.classes()) {
        assert_eq!(c.class, class.id);
        assert_eq!(c.source, class.source);
        assert!(c.bound > 0.0);
    }
}
