//! The `<p.HRTDM>` **safety** property: successful transmissions over the
//! broadcast medium are mutually exclusive — checked on the channel trace,
//! for every protocol, under heavy contention.

use ddcr_baseline::{CsmaCdStation, DcrStation, QueueDiscipline};
use ddcr_core::{DdcrConfig, DdcrStation, StaticAllocation};
use ddcr_integration::ddcr_setup;
use ddcr_sim::{
    Engine, MediumConfig, SourceId, Ticks, Trace, TraceEvent,
};
use ddcr_traffic::{scenario, ScheduleBuilder};

/// Asserts no two transmissions overlap in a channel trace and that every
/// TxStart has a matching TxEnd.
fn assert_mutual_exclusion(events: &[TraceEvent]) {
    let mut in_flight: Option<(ddcr_sim::MessageId, Ticks)> = None;
    for e in events {
        match *e {
            TraceEvent::TxStart { at, message } => {
                if let Some((other, _)) = in_flight {
                    panic!("transmission {message} started at {at} while {other} in flight");
                }
                in_flight = Some((message, at));
            }
            TraceEvent::TxEnd { at, message } => {
                match in_flight.take() {
                    Some((started, t0)) => {
                        assert_eq!(started, message, "interleaved tx end");
                        assert!(at > t0, "zero-length transmission");
                    }
                    None => {
                        // Arbitrated collisions emit TxEnd without TxStart;
                        // they still occupy the channel exclusively because
                        // the engine serialises slots.
                    }
                }
            }
            TraceEvent::Silence { .. }
            | TraceEvent::Collision { .. }
            | TraceEvent::Garbled { .. } => {
                assert!(
                    in_flight.is_none(),
                    "channel event during an in-flight transmission"
                );
            }
            // Membership annotations occupy no channel time.
            TraceEvent::Joined { .. } | TraceEvent::Left { .. } => {}
        }
    }
    assert!(in_flight.is_none(), "transmission never completed");
}

fn contended_workload() -> (ddcr_traffic::MessageSet, Vec<ddcr_sim::Message>) {
    let set = scenario::stock_exchange(6).unwrap();
    let schedule = ScheduleBuilder::peak_load(&set).build(Ticks(3_000_000)).unwrap();
    (set, schedule)
}

#[test]
fn ddcr_transmissions_are_mutually_exclusive() {
    let (set, schedule) = contended_workload();
    let medium = MediumConfig::gigabit_ethernet();
    let (config, allocation) = ddcr_setup(&set, &medium);
    let mut engine =
        ddcr_core::network::build_engine(&set, &config, &allocation, medium).unwrap();
    engine.set_trace(Trace::enabled());
    engine.add_arrivals(schedule).unwrap();
    engine.run_to_completion(Ticks(200_000_000_000)).unwrap();
    assert_mutual_exclusion(engine.trace().events());
}

#[test]
fn csma_cd_transmissions_are_mutually_exclusive() {
    let (set, schedule) = contended_workload();
    let medium = MediumConfig::gigabit_ethernet();
    let mut engine = Engine::new(medium).unwrap();
    for i in 0..set.sources() {
        engine.add_station(Box::new(CsmaCdStation::new(
            SourceId(i),
            medium,
            QueueDiscipline::Fifo,
            3,
        )));
    }
    engine.set_trace(Trace::enabled());
    engine.add_arrivals(schedule).unwrap();
    engine.run_to_completion(Ticks(200_000_000_000)).unwrap();
    assert_mutual_exclusion(engine.trace().events());
}

#[test]
fn dcr_transmissions_are_mutually_exclusive() {
    let (set, schedule) = contended_workload();
    let medium = MediumConfig::gigabit_ethernet();
    let mut engine = Engine::new(medium).unwrap();
    for i in 0..set.sources() {
        engine.add_station(Box::new(
            DcrStation::new(SourceId(i), set.sources(), medium, QueueDiscipline::Fifo).unwrap(),
        ));
    }
    engine.set_trace(Trace::enabled());
    engine.add_arrivals(schedule).unwrap();
    engine.run_to_completion(Ticks(200_000_000_000)).unwrap();
    assert_mutual_exclusion(engine.trace().events());
}

#[test]
fn no_message_is_delivered_twice_or_invented() {
    let (set, schedule) = contended_workload();
    let scheduled_ids: std::collections::HashSet<u64> =
        schedule.iter().map(|m| m.id.0).collect();
    let medium = MediumConfig::gigabit_ethernet();
    let stats = ddcr_integration::run_ddcr(&set, schedule, medium);
    let mut seen = std::collections::HashSet::new();
    for d in &stats.deliveries {
        assert!(seen.insert(d.message.id.0), "duplicate delivery {:?}", d.message.id);
        assert!(
            scheduled_ids.contains(&d.message.id.0),
            "delivered a message never scheduled"
        );
    }
    assert_eq!(seen.len(), scheduled_ids.len(), "lost messages");
}

#[test]
fn arbitrated_fabric_preserves_exclusion() {
    let set = scenario::uniform(8, 48 * 8, Ticks(50_000), 0.5).unwrap();
    let schedule = ScheduleBuilder::peak_load(&set).build(Ticks(500_000)).unwrap();
    let medium = MediumConfig::atm_internal_bus();
    let config = DdcrConfig::for_sources(
        8,
        ddcr_core::network::recommended_class_width(&set, 64, &medium),
    )
    .unwrap();
    let allocation = StaticAllocation::one_per_source(config.static_tree, 8).unwrap();
    let mut engine =
        ddcr_core::network::build_engine(&set, &config, &allocation, medium).unwrap();
    engine.set_trace(Trace::enabled());
    engine.add_arrivals(schedule).unwrap();
    engine.run_to_completion(Ticks(200_000_000_000)).unwrap();
    assert_mutual_exclusion(engine.trace().events());
    // One DdcrStation sanity hook: stations exist and answer labels.
    let station = engine.station(0).unwrap();
    assert!(station.label().starts_with("ddcr:"));
    let _unused: Option<&DdcrStation> = None;
}
