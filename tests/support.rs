//! Shared helpers for the cross-crate integration tests.

use ddcr_core::{network, DdcrConfig, StaticAllocation};
use ddcr_sim::{ChannelStats, MediumConfig, Message, Ticks};
use ddcr_traffic::MessageSet;

/// Builds a (config, allocation) pair sized for the message set.
pub fn ddcr_setup(set: &MessageSet, medium: &MediumConfig) -> (DdcrConfig, StaticAllocation) {
    let c = network::recommended_class_width(set, 64, medium);
    let config = DdcrConfig::for_sources(set.sources(), c).expect("config");
    let allocation =
        StaticAllocation::round_robin(config.static_tree, set.sources()).expect("allocation");
    (config, allocation)
}

/// Runs a schedule through CSMA/DDCR to completion with a generous budget.
pub fn run_ddcr(
    set: &MessageSet,
    schedule: Vec<Message>,
    medium: MediumConfig,
) -> ChannelStats {
    let (config, allocation) = ddcr_setup(set, &medium);
    network::run(
        set,
        schedule,
        &config,
        &allocation,
        medium,
        network::RunLimit::Completion(Ticks(200_000_000_000)),
    )
    .expect("ddcr run to completion")
}
