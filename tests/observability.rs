//! Observability-layer integration tests: the streaming latency histogram
//! agrees with exact nearest-rank percentiles for every protocol and
//! collision mode, JSONL trace exports are bitwise identical across the
//! fast-forward and reference steppers, retention-off runs keep constant
//! memory with exact counters, and seeded DDCR runs never breach the
//! analytic ξ bound.

use ddcr_baseline::{CsmaCdStation, DcrStation, NpEdfOracle, QueueDiscipline};
use ddcr_core::network;
use ddcr_integration::ddcr_setup;
use ddcr_sim::{
    ChannelStats, ClassId, CollisionMode, Engine, JsonlSink, LatencyHistogram, MediumConfig,
    Message, MessageId, SourceId, Ticks,
};
use ddcr_traffic::{scenario, ScheduleBuilder};
use proptest::prelude::*;
use std::io::Write;
use std::sync::{Arc, Mutex};

#[derive(Debug, Clone, Copy)]
enum Proto {
    Ddcr,
    CsmaCd,
    Dcr,
    NpEdf,
}

const PROTOS: [Proto; 4] = [Proto::Ddcr, Proto::CsmaCd, Proto::Dcr, Proto::NpEdf];

fn medium_for(mode: CollisionMode) -> MediumConfig {
    let mut medium = MediumConfig::ethernet();
    medium.collision_mode = mode;
    medium
}

/// Runs a synthetic burst through one protocol, retaining every delivery so
/// exact per-delivery percentiles are available alongside the histogram.
fn run_proto(proto: Proto, mode: CollisionMode, z: u32, schedule: Vec<Message>) -> ChannelStats {
    let medium = medium_for(mode);
    let budget = Ticks(200_000_000_000);
    match proto {
        Proto::NpEdf => NpEdfOracle::run_schedule(medium, schedule, budget).expect("oracle run"),
        _ => {
            let mut engine = Engine::new(medium).expect("engine");
            match proto {
                Proto::Ddcr => {
                    let set =
                        scenario::uniform(z, 8_000, Ticks(50_000_000), 0.2).expect("set");
                    let (config, allocation) = ddcr_setup(&set, &medium);
                    engine = network::build_engine(&set, &config, &allocation, medium)
                        .expect("ddcr engine");
                }
                Proto::CsmaCd => {
                    for i in 0..z {
                        engine.add_station(Box::new(CsmaCdStation::new(
                            SourceId(i),
                            medium,
                            QueueDiscipline::Edf,
                            7,
                        )));
                    }
                }
                Proto::Dcr => {
                    for i in 0..z {
                        engine.add_station(Box::new(
                            DcrStation::new(SourceId(i), z, medium, QueueDiscipline::Edf)
                                .expect("dcr station"),
                        ));
                    }
                }
                Proto::NpEdf => unreachable!(),
            }
            engine.add_arrivals(schedule).expect("arrivals");
            let _ = engine.run_to_completion(budget);
            engine.into_stats()
        }
    }
}

fn burst_schedule(z: u32, per_source: u64, spacing: u64) -> Vec<Message> {
    let mut out = Vec::new();
    let mut id = 0u64;
    for round in 0..per_source {
        for s in 0..z {
            out.push(Message {
                id: MessageId(id),
                source: SourceId(s),
                class: ClassId(0),
                bits: 8_000,
                arrival: Ticks(round * spacing),
                deadline: Ticks(round * spacing + 50_000_000),
            });
            id += 1;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For every protocol and both collision modes, the histogram's
    /// p50/p95/p99 land in exactly the bucket containing the exact
    /// nearest-rank percentile computed from the retained deliveries.
    #[test]
    fn histogram_percentiles_match_exact_nearest_rank(
        per_source in 1u64..6,
        spacing_exp in 0usize..3,
        destructive in any::<bool>(),
    ) {
        let spacing = [40_000u64, 400_000, 4_000_000][spacing_exp];
        let mode = if destructive {
            CollisionMode::Destructive
        } else {
            CollisionMode::Arbitrating
        };
        let z = 4u32;
        for proto in PROTOS {
            let stats = run_proto(proto, mode, z, burst_schedule(z, per_source, spacing));
            prop_assert!(stats.delivered > 0, "{proto:?}: nothing delivered");
            prop_assert_eq!(
                stats.latency_histogram.total(),
                stats.delivered,
                "{:?}: histogram misses deliveries", proto
            );
            let (h50, h95, h99) = stats.histogram_percentiles();
            let (e50, e95, e99) = stats.latency_percentiles();
            for (q, hist, exact) in [(0.50, h50, e50), (0.95, h95, e95), (0.99, h99, e99)] {
                let bucket = LatencyHistogram::bucket_index(exact.as_u64());
                prop_assert_eq!(
                    hist.as_u64(),
                    LatencyHistogram::bucket_upper_bound(bucket),
                    "{:?} {:?} q={}: histogram {} not the bucket bound of exact {}",
                    proto, mode, q, hist.as_u64(), exact.as_u64()
                );
                prop_assert!(
                    hist >= exact,
                    "{proto:?} {mode:?} q={q}: histogram under-reports"
                );
            }
        }
    }
}

/// A `Write` handle into a shared buffer, so a consumed [`JsonlSink`] can
/// still be inspected afterwards.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn jsonl_export(fast: bool) -> (Vec<u8>, u64) {
    let set = scenario::uniform(4, 8_000, Ticks(5_000_000), 0.3).expect("set");
    let medium = MediumConfig::ethernet();
    let (config, allocation) = ddcr_setup(&set, &medium);
    let schedule = ScheduleBuilder::peak_load(&set)
        .build(Ticks(4_000_000))
        .expect("schedule");
    let mut engine =
        network::build_engine(&set, &config, &allocation, medium).expect("engine");
    engine.set_fast_forward(fast);
    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    engine.set_trace_sink(JsonlSink::new(Box::new(buf.clone())));
    engine.add_arrivals(schedule).expect("arrivals");
    engine
        .run_to_completion(Ticks(200_000_000_000))
        .expect("completion");
    let events = engine
        .take_trace_sink()
        .expect("sink attached")
        .finish()
        .expect("flush");
    let bytes = buf.0.lock().unwrap().clone();
    (bytes, events)
}

#[test]
fn jsonl_export_is_bitwise_identical_across_steppers() {
    let (fast, fast_events) = jsonl_export(true);
    let (reference, reference_events) = jsonl_export(false);
    assert!(fast_events > 0, "no events exported");
    assert_eq!(fast_events, reference_events);
    assert_eq!(fast, reference, "steppers produced different JSONL bytes");
    let text = String::from_utf8(fast).expect("utf8");
    let mut lines = text.lines();
    assert_eq!(
        lines.next().unwrap(),
        "{\"schema\":\"ddcr-trace\",\"version\":1}"
    );
    // Every event line is a one-object JSON record with a slot timestamp.
    for line in lines {
        assert!(line.starts_with("{\"at\":"), "malformed line: {line}");
        assert!(line.ends_with('}'), "malformed line: {line}");
    }
    assert_eq!(text.lines().count() as u64, fast_events + 1);
}

/// With retention off, a long run keeps no per-delivery records at all while
/// the streaming counters and the histogram stay exact.
#[test]
fn retention_off_long_run_keeps_exact_counts_without_records() {
    let set = scenario::uniform(4, 8_000, Ticks(50_000_000), 0.3).expect("set");
    let medium = MediumConfig::ethernet();
    let (config, allocation) = ddcr_setup(&set, &medium);
    let schedule = ScheduleBuilder::periodic(&set)
        .build(Ticks(200_000_000))
        .expect("schedule");
    let scheduled = schedule.len() as u64;
    assert!(scheduled > 100, "workload too small to be interesting");
    let mut engine =
        network::build_engine(&set, &config, &allocation, medium).expect("engine");
    engine.set_retention(Some(0), Some(0));
    engine.add_arrivals(schedule).expect("arrivals");
    engine
        .run_to_completion(Ticks(200_000_000_000))
        .expect("completion");
    let stats = engine.into_stats();
    assert!(stats.deliveries.is_empty(), "retention 0 retained deliveries");
    assert!(stats.lost.is_empty(), "retention 0 retained lost records");
    assert_eq!(stats.delivered, scheduled);
    assert_eq!(stats.latency_histogram.total(), scheduled);
    assert_eq!(stats.deadline_misses(), 0);
    let (p50, p95, p99) = stats.histogram_percentiles();
    assert!(p50 > Ticks::ZERO && p50 <= p95 && p95 <= p99);
    assert!(stats.mean_latency() > 0.0);
    assert!(stats.max_latency() > Ticks::ZERO);
}

/// A seeded peak-load DDCR run with live ξ checks: the observed per-epoch
/// search overhead never exceeds the analytic ξ_k^t allowance.
#[test]
fn seeded_ddcr_run_never_breaches_the_xi_bound() {
    let set = scenario::uniform(6, 8_000, Ticks(10_000_000), 0.4).expect("set");
    let medium = MediumConfig::ethernet();
    let (config, allocation) = ddcr_setup(&set, &medium);
    let schedule = ScheduleBuilder::peak_load(&set)
        .build(Ticks(20_000_000))
        .expect("schedule");
    let mut engine =
        network::build_engine(&set, &config, &allocation, medium).expect("engine");
    let (time, static_) = network::xi_bound_tables(&config).expect("bounds");
    engine.set_xi_bounds(time, static_);
    engine.add_arrivals(schedule).expect("arrivals");
    engine
        .run_to_completion(Ticks(200_000_000_000))
        .expect("completion");
    let metrics = engine.take_metrics().expect("metrics enabled");
    assert_eq!(
        metrics.violations_total,
        0,
        "observed ξ breached the bound: {:?}",
        metrics.violations()
    );
    assert!(metrics.epochs_checked > 0, "no epoch was checked");
    assert_eq!(metrics.phase_slots.unattributed, 0);
    assert!(metrics.max_tts_overhead > 0, "no search overhead observed");
}
