//! Fault injection: a non-conforming "jammer" station shares the bus with
//! a CSMA/DDCR network. The paper (§3.1) credits broadcast-bus protocols
//! with "interesting fault-tolerant properties"; these tests pin down what
//! the implementation actually guarantees under interference:
//!
//! * **safety survives** — transmissions remain mutually exclusive (the
//!   medium arbitrates, a babbler cannot forge overlap);
//! * **replicas survive** — every conforming station hears the same
//!   channel feedback, jam or not, so protocol state stays consistent;
//! * **liveness survives light jamming** — all legitimate messages are
//!   still delivered (deadlines may be lost; guarantees are only proved
//!   for conforming networks).

use ddcr_core::{network, DdcrConfig, DdcrStation, StaticAllocation};
use ddcr_sim::rng::{derive_seed, seeded_rng};
use ddcr_sim::{
    Action, ClassId, Engine, Frame, Message, MessageId, Observation, SourceId, Station, Ticks,
    Trace, TraceEvent,
};
use ddcr_traffic::{scenario, ScheduleBuilder};
use rand::Rng;

/// A babbling station: transmits a junk frame with probability `p` at
/// every poll, ignoring all protocol rules.
struct Jammer {
    source: SourceId,
    probability: f64,
    rng: rand::rngs::StdRng,
    shots: u64,
}

impl Jammer {
    fn new(source: SourceId, probability: f64, seed: u64) -> Self {
        Jammer {
            source,
            probability,
            rng: seeded_rng(derive_seed(seed, u64::from(source.0))),
            shots: 0,
        }
    }
}

impl Station for Jammer {
    fn deliver(&mut self, _message: Message) {}

    fn poll(&mut self, now: Ticks) -> Action {
        if self.rng.gen_bool(self.probability) {
            self.shots += 1;
            Action::Transmit(Frame::new(
                Message {
                    id: MessageId(u64::MAX - self.shots),
                    source: self.source,
                    class: ClassId(u32::MAX),
                    bits: 512,
                    arrival: now,
                    deadline: Ticks(1),
                },
                512,
            ))
        } else {
            Action::Idle
        }
    }

    fn observe(&mut self, _now: Ticks, _next_free: Ticks, _observation: &Observation) {}

    fn backlog(&self) -> usize {
        0 // never blocks run_to_completion
    }

    fn label(&self) -> String {
        format!("jammer:{}", self.source)
    }
}

fn jammed_engine(z: u32, jam_probability: f64) -> (Engine, Vec<Message>) {
    let set = scenario::uniform(z, 8_000, Ticks(60_000_000), 0.2).unwrap();
    let medium = ddcr_sim::MediumConfig::ethernet();
    let c = network::recommended_class_width(&set, 64, &medium);
    let config = DdcrConfig::for_sources(z, c).unwrap();
    let allocation = StaticAllocation::round_robin(config.static_tree, z).unwrap();
    let mut engine = Engine::new(medium).unwrap();
    for i in 0..z {
        engine.add_station(Box::new(
            DdcrStation::new(SourceId(i), config, allocation.clone(), medium.overhead_bits)
                .unwrap(),
        ));
    }
    // The jammer sits on the bus as an extra station.
    engine.add_station(Box::new(Jammer::new(SourceId(z), jam_probability, 99)));
    let schedule = ScheduleBuilder::peak_load(&set).build(Ticks(4_000_000)).unwrap();
    (engine, schedule)
}

#[test]
fn light_jamming_delays_but_does_not_lose_messages() {
    let (mut engine, schedule) = jammed_engine(4, 0.05);
    let n = schedule.len();
    let legitimate: std::collections::HashSet<u64> =
        schedule.iter().map(|m| m.id.0).collect();
    engine.add_arrivals(schedule).unwrap();
    engine.run_to_completion(Ticks(400_000_000_000)).unwrap();
    let delivered: Vec<u64> = engine
        .stats()
        .deliveries
        .iter()
        .map(|d| d.message.id.0)
        .filter(|id| legitimate.contains(id))
        .collect();
    assert_eq!(delivered.len(), n, "legitimate messages lost under jamming");
}

#[test]
fn safety_holds_under_heavy_jamming() {
    let (mut engine, schedule) = jammed_engine(4, 0.4);
    engine.set_trace(Trace::enabled());
    engine.add_arrivals(schedule).unwrap();
    // Heavy jamming: run a fixed horizon (completion may be impossible).
    engine.run_until(Ticks(50_000_000));
    let mut in_flight = false;
    for e in engine.trace().events() {
        match e {
            TraceEvent::TxStart { .. } => {
                assert!(!in_flight, "overlapping transmissions under jamming");
                in_flight = true;
            }
            TraceEvent::TxEnd { .. } => in_flight = false,
            TraceEvent::Silence { .. }
            | TraceEvent::Collision { .. }
            | TraceEvent::Garbled { .. } => {
                assert!(!in_flight, "channel event inside a transmission");
            }
            // Membership annotations occupy no channel time.
            TraceEvent::Joined { .. } | TraceEvent::Left { .. } => {}
        }
    }
}

#[test]
fn replicas_agree_despite_jamming() {
    // Manual drive with a jammer mixed in: all DDCR replicas must hold
    // identical shared state at every slot, since they hear the same
    // (jammed) channel.
    let z = 3u32;
    let medium = ddcr_sim::MediumConfig::ethernet();
    let config = DdcrConfig::for_sources(z, Ticks(100_000)).unwrap();
    let allocation = StaticAllocation::one_per_source(config.static_tree, z).unwrap();
    let mut stations: Vec<DdcrStation> = (0..z)
        .map(|i| {
            DdcrStation::new(SourceId(i), config, allocation.clone(), medium.overhead_bits)
                .unwrap()
        })
        .collect();
    let mut jammer = Jammer::new(SourceId(z), 0.2, 7);
    for i in 0..z {
        stations[i as usize].deliver(Message {
            id: MessageId(u64::from(i)),
            source: SourceId(i),
            class: ClassId(0),
            bits: 8_000,
            arrival: Ticks(0),
            deadline: Ticks(2_000_000),
        });
    }
    let mut now = Ticks::ZERO;
    for _ in 0..3_000 {
        let mut frames: Vec<Frame> = stations
            .iter_mut()
            .filter_map(|s| match s.poll(now) {
                Action::Transmit(f) => Some(f),
                Action::Idle => None,
            })
            .collect();
        if let Action::Transmit(f) = jammer.poll(now) {
            frames.push(f);
        }
        let (obs, advance) = match frames.len() {
            0 => (Observation::Silence, Ticks(512)),
            1 => (Observation::Busy(frames[0]), frames[0].duration()),
            _ => (Observation::Collision { survivor: None }, Ticks(512)),
        };
        let next_free = now + advance;
        for s in stations.iter_mut() {
            s.observe(now, next_free, &obs);
        }
        let digests: Vec<String> = stations.iter().map(|s| s.shared_state_digest()).collect();
        for d in &digests[1..] {
            assert_eq!(&digests[0], d, "replica divergence under jamming at {now}");
        }
        now = next_free;
        if stations.iter().all(|s| s.backlog() == 0) {
            break;
        }
    }
    assert!(
        stations.iter().all(|s| s.backlog() == 0),
        "messages not delivered despite 3000 slots"
    );
}
