//! ξ cross-validation: the analytic search-time theory of Eq. (1)–(10),
//! the synthesized pre-split visit sequences ([`ddcr_tree::visit`]), and
//! the stepped simulator must all report the same per-search slot counts.
//!
//! The chain has three links:
//!
//! 1. **Analytic ↔ analytic** — the DP on Eq. (1)
//!    ([`SearchTimeTable`]), the divide-and-conquer recursion Eq. (2)–(4)
//!    ([`ddcr_tree::divide::xi_divide`]) and the closed form Eq. (9)–(10)
//!    ([`ddcr_tree::closed_form::xi_closed`]) agree on every `ξ_k^t`, and
//!    the pre-split worst case is exactly `ξ_k^t − 1` for `k ≥ 2` (the
//!    root collision is paid on the channel, never probed).
//! 2. **Analytic ↔ synthesized** — for randomized leaf sets the replayed
//!    pre-split sequence costs what the rooted search costs minus the
//!    root-probe discount, and never exceeds the worst case.
//! 3. **Synthesized ↔ stepped simulator** — a DDCR network whose messages
//!    freeze onto exactly those time-tree leaves runs a live TTs whose
//!    observed per-epoch overhead (the [`SimMetrics`] ξ-window) equals the
//!    synthesized slot count, under the reference stepper; worst-case
//!    witness sets achieve `ξ_k^F − 1` on the wire.

use ddcr_core::{DdcrConfig, DdcrStation, StaticAllocation};
use ddcr_sim::{
    ClassId, Engine, MediumConfig, Message, MessageId, SimMetrics, SourceId, Ticks,
};
use ddcr_tree::closed_form::xi_closed;
use ddcr_tree::divide::xi_divide;
use ddcr_tree::search::search_active_leaves;
use ddcr_tree::visit::{presplit_active_leaves, presplit_worst_case};
use ddcr_tree::witness::worst_case_witness;
use ddcr_tree::{SearchTimeTable, TreeShape};
use proptest::prelude::*;

/// Branching degree of the default 64-leaf quaternary time tree.
const M: u64 = 4;

/// Drives a DDCR network whose `k` stations each carry one message frozen
/// onto a distinct time-tree leaf, and returns the run's metrics.
///
/// With `reft = 0` at protocol start and `α = c`, a message arriving at
/// `t = 0` with relative deadline `α + c·leaf + c/2` lands in deadline
/// class `leaf` exactly (`raw_f = ⌊(c·leaf + c/2)/c⌋ = leaf`), so the
/// first TTs resolves precisely the chosen leaf set.
fn run_leaf_set(leaves: &[u64], reference: bool) -> SimMetrics {
    let z = leaves.len() as u32;
    let config = DdcrConfig::for_sources(z, Ticks(100_000)).unwrap();
    assert_eq!(config.time_tree.leaves(), 64);
    let allocation = StaticAllocation::one_per_source(config.static_tree, z).unwrap();
    let medium = MediumConfig::ethernet();
    let mut engine = Engine::new(medium).unwrap();
    if reference {
        engine.set_fast_forward(false);
        engine.set_busy_fast_forward(false);
        engine.set_contention_fast_forward(false);
    }
    for i in 0..z {
        engine.add_station(Box::new(
            DdcrStation::new(SourceId(i), config, allocation.clone(), medium.overhead_bits)
                .unwrap(),
        ));
    }
    let (time, static_) = ddcr_core::network::xi_bound_tables(&config).unwrap();
    engine.set_xi_bounds(time, static_);
    let c = config.class_width.as_u64();
    let arrivals: Vec<Message> = leaves
        .iter()
        .enumerate()
        .map(|(i, &leaf)| Message {
            id: MessageId(i as u64),
            source: SourceId(i as u32),
            class: ClassId(0),
            bits: 1_000,
            arrival: Ticks::ZERO,
            deadline: Ticks(config.alpha.as_u64() + c * leaf + c / 2),
        })
        .collect();
    engine.add_arrivals(arrivals).unwrap();
    // Far past the search plus several idle cycles, so the contended epoch
    // closes and the post-drain idle behaviour is also observed.
    engine.run_until(Ticks(500_000));
    assert_eq!(engine.stats().delivered, leaves.len() as u64);
    engine.take_metrics().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Link 2: for arbitrary leaf sets the pre-split sequence costs the
    /// rooted cost minus the root discount, bounded by the worst case.
    #[test]
    fn presplit_matches_rooted_minus_discount(
        pick in prop::collection::vec(0u64..64, 0..12),
        shape_pick in 0usize..3,
    ) {
        let shape = [
            TreeShape::new(2, 4).unwrap(),
            TreeShape::new(3, 2).unwrap(),
            TreeShape::new(4, 3).unwrap(),
        ][shape_pick];
        let t = shape.leaves();
        let leaves: Vec<u64> = pick.iter().map(|&x| x % t).collect();
        // Duplicates are legal input to both searches (a set is formed
        // internally), so keep them in `leaves` and compare against the
        // deduplicated `set`.
        let mut set = leaves.clone();
        set.sort_unstable();
        set.dedup();
        let k = set.len() as u64;
        let m = shape.branching();

        let rooted = search_active_leaves(shape, &leaves).unwrap();
        let live = presplit_active_leaves(shape, &leaves).unwrap();
        let expected = match k {
            0 => m,
            1 => m - 1,
            _ => rooted.search_slots() - 1,
        };
        prop_assert_eq!(live.search_slots(), expected);
        prop_assert_eq!(&live.transmissions, &set);
        prop_assert!(live.search_slots() <= presplit_worst_case(shape, k).unwrap());
    }

    /// Link 3: the stepped simulator's observed TTs ξ-window equals the
    /// synthesized pre-split slot count for randomized distinct leaf sets.
    /// (Post-drain idle epochs each cost exactly `m` empty probes, hence
    /// the `max` with `m`.)
    #[test]
    fn stepped_simulator_observes_synthesized_search_cost(
        pick in prop::collection::vec(0u64..64, 1..8),
    ) {
        let mut leaves: Vec<u64> = pick;
        leaves.sort_unstable();
        leaves.dedup();
        let shape = TreeShape::new(4, 3).unwrap();
        let synthesized = presplit_active_leaves(shape, &leaves).unwrap().search_slots();

        let metrics = run_leaf_set(&leaves, true);
        prop_assert_eq!(
            metrics.max_tts_overhead,
            synthesized.max(M),
            "leaves={:?}", &leaves
        );
        // DDCR attributes every stepped slot, and the observed overhead
        // honours the analytic allowance (Eq. 1 via the envelope).
        prop_assert_eq!(metrics.phase_slots.unattributed, 0);
        prop_assert_eq!(metrics.violations_total, 0);
        prop_assert!(metrics.epochs_checked > 0);

        // The fast-forwarding engine may under-count overhead inside
        // provably silent skips, but can never over-count, and must raise
        // no violation either.
        let fast = run_leaf_set(&leaves, false);
        prop_assert!(fast.max_tts_overhead <= synthesized.max(M));
        prop_assert_eq!(fast.violations_total, 0);
    }
}

/// Link 1: every analytic route to `ξ_k^t` agrees, and the pre-split worst
/// case is the rooted worst case minus the root-collision discount.
#[test]
fn analytic_routes_agree_on_xi_and_presplit_discount() {
    for (m, n) in [(2u64, 4u32), (3, 3), (4, 3)] {
        let shape = TreeShape::new(m, n).unwrap();
        let table = SearchTimeTable::compute(shape).unwrap();
        for k in 0..=shape.leaves() {
            let dp = table.xi(k).unwrap();
            assert_eq!(dp, xi_closed(shape, k).unwrap(), "m={m} n={n} k={k}");
            assert_eq!(dp, xi_divide(shape, k).unwrap(), "m={m} n={n} k={k}");
            let presplit = presplit_worst_case(shape, k).unwrap();
            match k {
                0 => assert_eq!(presplit, m),
                1 => assert_eq!(presplit, m - 1),
                _ => assert_eq!(presplit, dp - 1, "m={m} n={n} k={k}"),
            }
        }
    }
}

/// Link 3, worst case: a witness leaf set achieving `ξ_k^F` drives the live
/// network to exactly `ξ_k^F − 1` observed overhead slots — the analytic
/// worst case is achieved on the wire, root discount included.
#[test]
fn worst_case_witness_achieves_xi_on_the_wire() {
    let shape = TreeShape::new(4, 3).unwrap();
    let table = SearchTimeTable::compute(shape).unwrap();
    for k in [2u64, 3, 5, 7] {
        let witness = worst_case_witness(shape, k).unwrap();
        assert_eq!(witness.len() as u64, k);
        let synthesized = presplit_active_leaves(shape, &witness).unwrap();
        let xi = table.xi(k).unwrap();
        assert_eq!(synthesized.search_slots(), xi - 1, "k={k}");

        let metrics = run_leaf_set(&witness, true);
        assert_eq!(
            metrics.max_tts_overhead,
            (xi - 1).max(M),
            "k={k} witness={witness:?}"
        );
        assert_eq!(metrics.violations_total, 0);
    }
}
