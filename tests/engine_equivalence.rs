//! Fast-forward equivalence: the optimized engine (idle, busy-period, and
//! contention fast-forward plus the active-set scheduler on, the defaults)
//! and the retained reference stepper (every one of
//! [`Engine::set_fast_forward`], [`Engine::set_busy_fast_forward`],
//! [`Engine::set_contention_fast_forward`], and [`Engine::set_active_set`]
//! forced to `false`) must be bitwise indistinguishable — identical channel
//! traces, statistics, delivery schedules, final clocks, and timeout
//! outcomes — across every protocol, random workload, collision mode, and
//! fault plan. The four switches are exercised across the full 2⁴ power set
//! so a regression in any path (or any interaction between paths) bisects
//! cleanly.

use ddcr_baseline::{CsmaCdStation, DcrStation, NpEdfOracle, QueueDiscipline};
use ddcr_core::{BurstConfig, DdcrConfig, DdcrStation, StaticAllocation};
use ddcr_sim::{
    ClassId, CollisionMode, Engine, FaultEvent, FaultKind, FaultPlan, FaultRates, MediumConfig,
    Message, MessageId, SimError, SourceId, Ticks, Trace, TraceEvent,
};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Proto {
    Ddcr { theta: u64, bursting: bool },
    CsmaCd { seed: u64 },
    Dcr,
    NpEdf,
}

/// (idle fast-forward, busy fast-forward, contention fast-forward,
/// active-set scheduler) switch settings. The reference stepper is
/// `(false, false, false, false)`; the production default is
/// `(true, true, true, true)`; the remaining combinations isolate each
/// optimisation and every interaction between them for bisection.
type Steppers = (bool, bool, bool, bool);

const REFERENCE: Steppers = (false, false, false, false);
const OPTIMIZED: [Steppers; 15] = [
    (true, true, true, true),
    (true, true, true, false),
    (true, true, false, true),
    (true, false, true, true),
    (false, true, true, true),
    (true, true, false, false),
    (true, false, true, false),
    (false, true, true, false),
    (true, false, false, true),
    (false, true, false, true),
    (false, false, true, true),
    (true, false, false, false),
    (false, true, false, false),
    (false, false, true, false),
    (false, false, false, true),
];

fn build_engine(proto: Proto, z: u32, medium: MediumConfig, steppers: Steppers) -> Engine {
    let mut engine = Engine::new(medium).unwrap();
    engine.set_fast_forward(steppers.0);
    engine.set_busy_fast_forward(steppers.1);
    engine.set_contention_fast_forward(steppers.2);
    engine.set_active_set(steppers.3);
    engine.set_trace(Trace::enabled());
    match proto {
        Proto::Ddcr { theta, bursting } => {
            let mut config = DdcrConfig::for_sources(z, Ticks(100_000))
                .unwrap()
                .with_compressed_time(theta);
            if bursting {
                config = config.with_bursting(BurstConfig {
                    max_extra_bits: 16_384,
                });
            }
            let allocation =
                StaticAllocation::one_per_source(config.static_tree, z).unwrap();
            for i in 0..z {
                engine.add_station(Box::new(
                    DdcrStation::new(
                        SourceId(i),
                        config,
                        allocation.clone(),
                        medium.overhead_bits,
                    )
                    .unwrap(),
                ));
            }
        }
        Proto::CsmaCd { seed } => {
            for i in 0..z {
                engine.add_station(Box::new(CsmaCdStation::new(
                    SourceId(i),
                    medium,
                    QueueDiscipline::Fifo,
                    seed,
                )));
            }
        }
        Proto::Dcr => {
            for i in 0..z {
                engine.add_station(Box::new(
                    DcrStation::new(SourceId(i), z, medium, QueueDiscipline::Fifo).unwrap(),
                ));
            }
        }
        Proto::NpEdf => {
            engine.add_station(Box::new(NpEdfOracle::new(medium)));
        }
    }
    engine
}

/// Everything observable about one run, for exact comparison.
#[derive(Debug, PartialEq)]
struct RunDigest {
    outcome: Option<Result<(), SimError>>,
    now: Ticks,
    events: Vec<TraceEvent>,
    stats: ddcr_sim::ChannelStats,
}

fn run_once(
    proto: Proto,
    z: u32,
    medium: MediumConfig,
    arrivals: &[Message],
    to_completion: bool,
    steppers: Steppers,
) -> RunDigest {
    run_with_plan(proto, z, medium, arrivals, to_completion, steppers, None)
}

fn run_with_plan(
    proto: Proto,
    z: u32,
    medium: MediumConfig,
    arrivals: &[Message],
    to_completion: bool,
    steppers: Steppers,
    plan: Option<FaultPlan>,
) -> RunDigest {
    let mut engine = build_engine(proto, z, medium, steppers);
    if let Some(plan) = plan {
        engine.set_fault_plan(plan);
    }
    engine.add_arrivals(arrivals.iter().copied()).unwrap();
    let outcome = if to_completion {
        Some(engine.run_to_completion(Ticks(60_000_000)))
    } else {
        engine.run_until(Ticks(20_000_000));
        None
    };
    RunDigest {
        outcome,
        now: engine.now(),
        events: engine.trace().events().to_vec(),
        stats: engine.into_stats(),
    }
}

fn pick_proto(pick: usize) -> Proto {
    match pick {
        0 => Proto::Ddcr {
            theta: 0,
            bursting: false,
        },
        1 => Proto::Ddcr {
            theta: 2,
            bursting: false,
        },
        2 => Proto::Ddcr {
            theta: 0,
            bursting: true,
        },
        3 => Proto::CsmaCd { seed: 7 },
        4 => Proto::Dcr,
        _ => Proto::NpEdf,
    }
}

fn make_arrivals(raw: &[(u32, u64, u64)], z: u32, bits: u64) -> Vec<Message> {
    let mut at = 0u64;
    raw.iter()
        .enumerate()
        .map(|(i, &(source, gap, deadline))| {
            at += gap;
            Message {
                id: MessageId(i as u64),
                source: SourceId(source % z),
                class: ClassId(0),
                bits,
                arrival: Ticks(at),
                deadline: Ticks(deadline),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The central equivalence property: same protocol, same workload, same
    /// medium ⇒ every optimized stepper configuration and the reference
    /// stepper agree on every observable (trace event list, statistics
    /// including per-delivery completion times, final clock, timeout
    /// outcome).
    #[test]
    fn optimized_engine_matches_reference(
        z in 2u32..6,
        // (source, inter-arrival gap, deadline) triples; the gaps create
        // the idle stretches the idle fast-forward path exists for.
        raw in prop::collection::vec(
            (0u32..8, 0u64..600_000, 300_000u64..9_000_000),
            0..20,
        ),
        proto_pick in 0usize..6,
        arbitrating in any::<bool>(),
        to_completion in any::<bool>(),
    ) {
        let proto = pick_proto(proto_pick);
        let z = if matches!(proto, Proto::NpEdf) { 1 } else { z };
        let mut medium = MediumConfig::ethernet();
        medium.collision_mode = if arbitrating {
            CollisionMode::Arbitrating
        } else {
            CollisionMode::Destructive
        };
        let arrivals = make_arrivals(&raw, z, 4_000);
        let reference = run_once(proto, z, medium, &arrivals, to_completion, REFERENCE);
        for steppers in OPTIMIZED {
            let fast = run_once(proto, z, medium, &arrivals, to_completion, steppers);
            prop_assert_eq!(&fast, &reference, "steppers={:?}", steppers);
        }
    }

    /// The loaded-regime counterpart: tight inter-arrival gaps (well under
    /// one frame duration) force arrivals to land mid-transmission, so the
    /// busy fast-forward path constantly starts, caps, and resumes runs.
    /// Every stepper configuration must still agree bitwise.
    #[test]
    fn loaded_regime_matches_reference(
        z in 2u32..6,
        // Gaps of 0..3_000 ticks against ~1_200-tick frames: most arrivals
        // land while a transmission or committed hold is in flight.
        raw in prop::collection::vec(
            (0u32..8, 0u64..3_000, 300_000u64..9_000_000),
            1..32,
        ),
        proto_pick in 0usize..6,
        arbitrating in any::<bool>(),
        to_completion in any::<bool>(),
    ) {
        let proto = pick_proto(proto_pick);
        let z = if matches!(proto, Proto::NpEdf) { 1 } else { z };
        let mut medium = MediumConfig::ethernet();
        medium.collision_mode = if arbitrating {
            CollisionMode::Arbitrating
        } else {
            CollisionMode::Destructive
        };
        let arrivals = make_arrivals(&raw, z, 1_000);
        let reference = run_once(proto, z, medium, &arrivals, to_completion, REFERENCE);
        for steppers in OPTIMIZED {
            let fast = run_once(proto, z, medium, &arrivals, to_completion, steppers);
            prop_assert_eq!(&fast, &reference, "steppers={:?}", steppers);
        }
    }

    /// Faults that strike while a busy run would be in flight: the engine
    /// must fence every committed run at the next scheduled fault ordinal,
    /// so corrupted slots, erased frames, and crash/restart transitions
    /// land on exactly the same decision slots as under the reference
    /// stepper.
    #[test]
    fn faults_mid_transmission_match_reference(
        z in 2u32..6,
        raw in prop::collection::vec(
            (0u32..8, 0u64..3_000, 300_000u64..9_000_000),
            1..24,
        ),
        // (slot ordinal, kind pick, station pick, down slots) — low slot
        // ordinals so the faults hit inside the loaded prefix of the run.
        raw_faults in prop::collection::vec(
            (0u64..48, 0usize..3, 0u32..8, 1u64..6),
            1..6,
        ),
        proto_pick in 0usize..6,
        arbitrating in any::<bool>(),
    ) {
        let proto = pick_proto(proto_pick);
        let z = if matches!(proto, Proto::NpEdf) { 1 } else { z };
        let mut medium = MediumConfig::ethernet();
        medium.collision_mode = if arbitrating {
            CollisionMode::Arbitrating
        } else {
            CollisionMode::Destructive
        };
        let arrivals = make_arrivals(&raw, z, 1_000);
        let events: Vec<FaultEvent> = raw_faults
            .iter()
            .map(|&(slot, kind, station, down_slots)| FaultEvent {
                slot,
                kind: match kind {
                    0 => FaultKind::CorruptSlot,
                    1 => FaultKind::EraseFrame,
                    _ => FaultKind::Crash {
                        station: station % z,
                        down_slots,
                    },
                },
            })
            .collect();
        let plan = FaultPlan::from_events(events);
        let reference = run_with_plan(
            proto, z, medium, &arrivals, true, REFERENCE, Some(plan.clone()),
        );
        for steppers in OPTIMIZED {
            let fast = run_with_plan(
                proto, z, medium, &arrivals, true, steppers, Some(plan.clone()),
            );
            prop_assert_eq!(&fast, &reference, "steppers={:?}", steppers);
        }
    }

    /// The fault subsystem is a strict superset: an engine carrying a
    /// zero-fault plan — whether the literal empty plan or one generated
    /// from all-zero rates — is bitwise indistinguishable from an engine
    /// with no plan at all, in both the fully optimized and reference
    /// steppers, for every protocol and collision mode.
    #[test]
    fn zero_fault_plan_is_bitwise_invisible(
        z in 2u32..6,
        raw in prop::collection::vec(
            (0u32..8, 0u64..600_000, 300_000u64..9_000_000),
            0..16,
        ),
        proto_pick in 0usize..6,
        arbitrating in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let proto = pick_proto(proto_pick);
        let z = if matches!(proto, Proto::NpEdf) { 1 } else { z };
        let mut medium = MediumConfig::ethernet();
        medium.collision_mode = if arbitrating {
            CollisionMode::Arbitrating
        } else {
            CollisionMode::Destructive
        };
        let arrivals = make_arrivals(&raw, z, 4_000);
        let generated = FaultPlan::generate(seed, z, 50_000, &FaultRates::default());
        prop_assert!(generated.is_empty(), "zero rates must generate no events");

        let plain = run_once(proto, z, medium, &arrivals, true, (true, true, true, true));
        let empty_fast = run_with_plan(
            proto, z, medium, &arrivals, true, (true, true, true, true), Some(FaultPlan::none()),
        );
        let empty_reference = run_with_plan(
            proto, z, medium, &arrivals, true, REFERENCE, Some(FaultPlan::none()),
        );
        let generated_fast = run_with_plan(
            proto, z, medium, &arrivals, true, (true, true, true, true), Some(generated),
        );
        prop_assert_eq!(&plain, &empty_fast);
        prop_assert_eq!(&plain, &empty_reference);
        prop_assert_eq!(&plain, &generated_fast);
    }
}

/// Idle-heavy deterministic spot check at a production-ish scale: 32 DDCR
/// stations, a handful of widely separated arrivals, a long horizon — the
/// exact shape the perf gate benchmarks — must agree event for event.
#[test]
fn idle_heavy_32_station_network_is_bitwise_equivalent() {
    let medium = MediumConfig::ethernet();
    let arrivals: Vec<Message> = (0..6u64)
        .map(|i| Message {
            id: MessageId(i),
            source: SourceId((i * 5 % 32) as u32),
            class: ClassId(0),
            bits: 8_000,
            arrival: Ticks(i * 7_000_000),
            deadline: Ticks(2_000_000),
        })
        .collect();
    for theta in [0u64, 2] {
        let proto = Proto::Ddcr {
            theta,
            bursting: false,
        };
        let fast = run_once(proto, 32, medium, &arrivals, false, (true, true, true, true));
        let reference = run_once(proto, 32, medium, &arrivals, false, REFERENCE);
        assert_eq!(fast, reference, "theta={theta}");
        // The run really was idle-dominated — the fast path had work to do.
        assert!(fast.stats.silence_slots > 10_000);
    }
}

/// Loaded deterministic spot check at the perf-gate shape: 32 bursting DDCR
/// stations draining clustered small messages. Verifies both that every
/// stepper configuration agrees bitwise *and* that the busy fast-forward
/// path genuinely engaged (the equivalence would be vacuous otherwise).
#[test]
fn loaded_32_station_burst_network_is_bitwise_equivalent() {
    let medium = MediumConfig::ethernet();
    let arrivals: Vec<Message> = (0..48u64)
        .map(|i| Message {
            id: MessageId(i),
            source: SourceId((i % 8) as u32),
            class: ClassId(0),
            bits: 1_000,
            arrival: Ticks((i / 8) * 40_000),
            deadline: Ticks(8_000_000),
        })
        .collect();
    let proto = Proto::Ddcr {
        theta: 0,
        bursting: true,
    };
    let reference = run_once(proto, 32, medium, &arrivals, true, REFERENCE);
    assert_eq!(reference.stats.deliveries.len(), 48);
    for steppers in OPTIMIZED {
        let fast = run_once(proto, 32, medium, &arrivals, true, steppers);
        assert_eq!(fast, reference, "steppers={steppers:?}");
    }

    // Busy-skip really fired: rerun the default configuration with metrics
    // on and check the telemetry counters.
    let mut engine = build_engine(proto, 32, medium, (true, true, true, true));
    engine.enable_metrics();
    engine.add_arrivals(arrivals.iter().copied()).unwrap();
    engine.run_to_completion(Ticks(60_000_000)).unwrap();
    let metrics = engine.metrics().expect("metrics enabled");
    assert!(
        metrics.busy_skip_runs > 0,
        "busy fast-forward never engaged on a loaded burst workload"
    );
    assert!(metrics.busy_skipped_slots >= metrics.busy_skip_runs);
}

/// Contention-heavy deterministic spot check: a few sources launch
/// same-class clusters into a 32-station network, so whole tree searches
/// (TTs leaf collisions, nested STs) run while 29 stations sit quiet — the
/// exact shape the contention fast-forward tier exists for. Every stepper
/// configuration must agree bitwise, and the search-skip telemetry must
/// show the tier genuinely engaged.
#[test]
fn contention_heavy_32_station_network_is_bitwise_equivalent() {
    let medium = MediumConfig::ethernet();
    // Three sources, clustered same-deadline arrivals: every cluster forces
    // a time-tree leaf collision and a static-tree tie-break.
    let arrivals: Vec<Message> = (0..24u64)
        .map(|i| Message {
            id: MessageId(i),
            source: SourceId((i % 3) as u32),
            class: ClassId(0),
            bits: 4_000,
            arrival: Ticks((i / 3) * 600_000),
            deadline: Ticks(8_000_000),
        })
        .collect();
    for arbitrating in [false, true] {
        let mut medium = medium;
        medium.collision_mode = if arbitrating {
            CollisionMode::Arbitrating
        } else {
            CollisionMode::Destructive
        };
        let proto = Proto::Ddcr {
            theta: 0,
            bursting: false,
        };
        let reference = run_once(proto, 32, medium, &arrivals, true, REFERENCE);
        assert_eq!(reference.stats.deliveries.len(), 24);
        for steppers in OPTIMIZED {
            let fast = run_once(proto, 32, medium, &arrivals, true, steppers);
            assert_eq!(fast, reference, "arbitrating={arbitrating} steppers={steppers:?}");
        }

        // The contention tier really fired, and it did the bulk of the
        // contended slots: rerun the default configuration with metrics on.
        let mut engine = build_engine(proto, 32, medium, (true, true, true, true));
        engine.enable_metrics();
        engine.add_arrivals(arrivals.iter().copied()).unwrap();
        engine.run_to_completion(Ticks(60_000_000)).unwrap();
        let metrics = engine.metrics().expect("metrics enabled");
        assert!(
            metrics.search_skip_runs > 0,
            "contention fast-forward never engaged (arbitrating={arbitrating})"
        );
        assert!(metrics.search_skipped_slots >= metrics.search_skip_runs);
    }
}

/// Saturated deterministic spot check — the *loaded idle cycle* regime the
/// analytic attempt-cycle path exists for: all 32 stations backlogged with
/// far deadlines, so every one sits the time tree search out and collides
/// at the attempt slot, cycle after cycle, until `reft` catches up with
/// the heads' deadline classes. Every stepper configuration must agree
/// bitwise, the run must actually be collision-dominated, and the
/// search-skip telemetry must show the analytic path resolved the bulk of
/// those slots in one step.
#[test]
fn saturated_32_station_attempt_cycles_are_bitwise_equivalent() {
    let medium = MediumConfig::ethernet();
    // Two far-deadline messages per station, all present from t = 0: the
    // whole network contends at every attempt slot, nobody enters the
    // tree until thousands of collided cycles advance `reft`.
    let arrivals: Vec<Message> = (0..64u64)
        .map(|i| Message {
            id: MessageId(i),
            source: SourceId((i % 32) as u32),
            class: ClassId(0),
            bits: 1_000,
            arrival: Ticks::ZERO,
            deadline: Ticks(30_000_000 + (i / 32) * 4_000_000),
        })
        .collect();
    let proto = Proto::Ddcr {
        theta: 0,
        bursting: false,
    };
    let reference = run_once(proto, 32, medium, &arrivals, true, REFERENCE);
    assert_eq!(reference.stats.deliveries.len(), 64);
    // The regime is real: collided attempt cycles dominate the run.
    assert!(
        reference.stats.collisions > 1_000,
        "expected a collision-dominated run, got {}",
        reference.stats.collisions
    );
    for steppers in OPTIMIZED {
        let fast = run_once(proto, 32, medium, &arrivals, true, steppers);
        assert_eq!(fast, reference, "steppers={steppers:?}");
    }

    // The analytic path really carried the load: rerun the default
    // configuration with metrics on and check that the overwhelming
    // majority of decision slots were resolved through the contention
    // tier's bulk skip rather than stepped.
    let mut engine = build_engine(proto, 32, medium, (true, true, true, true));
    engine.enable_metrics();
    engine.add_arrivals(arrivals.iter().copied()).unwrap();
    engine.run_to_completion(Ticks(60_000_000)).unwrap();
    let metrics = engine.metrics().expect("metrics enabled");
    let total_slots = reference.stats.silence_slots
        + reference.stats.collisions
        + reference.stats.deliveries.len() as u64;
    assert!(
        metrics.search_skipped_slots > total_slots / 2,
        "analytic attempt-cycle path resolved {} of {} slots",
        metrics.search_skipped_slots,
        total_slots
    );
}

/// Large-n sparse spot check — the regime the active-set scheduler exists
/// for: 1024 DDCR stations of which only 16 ever hold a message, so at any
/// decision slot the overwhelming majority of the population is dormant.
/// The active tier must resolve the run bitwise-equal to the reference
/// stepper while polling fewer than 10% of station-slots (station-slots =
/// decision slots × population; the reference pays all of them).
#[test]
fn sparse_1024_station_network_polls_under_ten_percent() {
    const Z: u32 = 1024;
    let medium = MediumConfig::ethernet();
    let proto = Proto::Ddcr {
        theta: 0,
        bursting: false,
    };
    // 16 contenders spread across the static tree, arrivals staggered so
    // the run mixes idle stretches, tree searches, and busy slots.
    let arrivals: Vec<Message> = (0..16u64)
        .map(|i| Message {
            id: MessageId(i),
            source: SourceId((i * 61 % u64::from(Z)) as u32),
            class: ClassId(0),
            bits: 4_000,
            arrival: Ticks(i * 120_000),
            deadline: Ticks(30_000_000),
        })
        .collect();

    let digest = |mut engine: Engine| {
        engine.add_arrivals(arrivals.iter().copied()).unwrap();
        let outcome = engine.run_to_completion(Ticks(60_000_000));
        let polls = engine.poll_count();
        let replays = engine.replay_count();
        let slots = engine.slot_ordinal();
        let run = RunDigest {
            outcome: Some(outcome),
            now: engine.now(),
            events: engine.trace().events().to_vec(),
            stats: engine.into_stats(),
        };
        (run, polls, replays, slots)
    };

    let (active, active_polls, active_replays, slots) =
        digest(build_engine(proto, Z, medium, (true, true, true, true)));
    let (reference, reference_polls, _, _) = digest(build_engine(proto, Z, medium, REFERENCE));

    assert_eq!(active, reference);
    assert_eq!(active.stats.deliveries.len(), 16);

    let station_slots = slots * u64::from(Z);
    assert!(
        active_polls < station_slots / 10,
        "active tier polled {active_polls} of {station_slots} station-slots"
    );
    // Wake-time catch-up must ride the epoch-anchored shortcut, not degrade
    // into replaying the whole deferred log for every waking station: the
    // total entries replayed must stay well under one-log-per-station.
    assert!(
        active_replays < station_slots / 10,
        "active tier replayed {active_replays} catch-up entries \
         over {station_slots} station-slots"
    );
    // The comparison is meaningful: the reference really pays O(n) per slot.
    assert!(reference_polls >= station_slots);
}
