//! Fast-forward equivalence: the optimized engine (idle fast-forward on,
//! the default) and the retained reference stepper
//! ([`Engine::set_fast_forward`]`(false)`) must be bitwise
//! indistinguishable — identical channel traces, statistics, delivery
//! schedules, final clocks, and timeout outcomes — across every protocol,
//! random workload, and collision mode.

use ddcr_baseline::{CsmaCdStation, DcrStation, NpEdfOracle, QueueDiscipline};
use ddcr_core::{DdcrConfig, DdcrStation, StaticAllocation};
use ddcr_sim::{
    ClassId, CollisionMode, Engine, FaultPlan, FaultRates, MediumConfig, Message, MessageId,
    SimError, SourceId, Ticks, Trace, TraceEvent,
};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Proto {
    Ddcr { theta: u64 },
    CsmaCd { seed: u64 },
    Dcr,
    NpEdf,
}

fn build_engine(proto: Proto, z: u32, medium: MediumConfig, fast: bool) -> Engine {
    let mut engine = Engine::new(medium).unwrap();
    engine.set_fast_forward(fast);
    engine.set_trace(Trace::enabled());
    match proto {
        Proto::Ddcr { theta } => {
            let config = DdcrConfig::for_sources(z, Ticks(100_000))
                .unwrap()
                .with_compressed_time(theta);
            let allocation =
                StaticAllocation::one_per_source(config.static_tree, z).unwrap();
            for i in 0..z {
                engine.add_station(Box::new(
                    DdcrStation::new(
                        SourceId(i),
                        config,
                        allocation.clone(),
                        medium.overhead_bits,
                    )
                    .unwrap(),
                ));
            }
        }
        Proto::CsmaCd { seed } => {
            for i in 0..z {
                engine.add_station(Box::new(CsmaCdStation::new(
                    SourceId(i),
                    medium,
                    QueueDiscipline::Fifo,
                    seed,
                )));
            }
        }
        Proto::Dcr => {
            for i in 0..z {
                engine.add_station(Box::new(
                    DcrStation::new(SourceId(i), z, medium, QueueDiscipline::Fifo).unwrap(),
                ));
            }
        }
        Proto::NpEdf => {
            engine.add_station(Box::new(NpEdfOracle::new(medium)));
        }
    }
    engine
}

/// Everything observable about one run, for exact comparison.
#[derive(Debug, PartialEq)]
struct RunDigest {
    outcome: Option<Result<(), SimError>>,
    now: Ticks,
    events: Vec<TraceEvent>,
    stats: ddcr_sim::ChannelStats,
}

fn run_once(
    proto: Proto,
    z: u32,
    medium: MediumConfig,
    arrivals: &[Message],
    to_completion: bool,
    fast: bool,
) -> RunDigest {
    run_with_plan(proto, z, medium, arrivals, to_completion, fast, None)
}

fn run_with_plan(
    proto: Proto,
    z: u32,
    medium: MediumConfig,
    arrivals: &[Message],
    to_completion: bool,
    fast: bool,
    plan: Option<FaultPlan>,
) -> RunDigest {
    let mut engine = build_engine(proto, z, medium, fast);
    if let Some(plan) = plan {
        engine.set_fault_plan(plan);
    }
    engine.add_arrivals(arrivals.iter().copied()).unwrap();
    let outcome = if to_completion {
        Some(engine.run_to_completion(Ticks(60_000_000)))
    } else {
        engine.run_until(Ticks(20_000_000));
        None
    };
    RunDigest {
        outcome,
        now: engine.now(),
        events: engine.trace().events().to_vec(),
        stats: engine.into_stats(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The central equivalence property: same protocol, same workload, same
    /// medium ⇒ the fast-forwarding engine and the reference stepper agree
    /// on every observable (trace event list, statistics including
    /// per-delivery completion times, final clock, timeout outcome).
    #[test]
    fn optimized_engine_matches_reference(
        z in 2u32..6,
        // (source, inter-arrival gap, deadline) triples; the gaps create
        // the idle stretches the fast-forward path exists for.
        raw in prop::collection::vec(
            (0u32..8, 0u64..600_000, 300_000u64..9_000_000),
            0..20,
        ),
        proto_pick in 0usize..5,
        arbitrating in any::<bool>(),
        to_completion in any::<bool>(),
    ) {
        let proto = match proto_pick {
            0 => Proto::Ddcr { theta: 0 },
            1 => Proto::Ddcr { theta: 2 },
            2 => Proto::CsmaCd { seed: 7 },
            3 => Proto::Dcr,
            _ => Proto::NpEdf,
        };
        let z = if matches!(proto, Proto::NpEdf) { 1 } else { z };
        let mut medium = MediumConfig::ethernet();
        medium.collision_mode = if arbitrating {
            CollisionMode::Arbitrating
        } else {
            CollisionMode::Destructive
        };
        let mut at = 0u64;
        let arrivals: Vec<Message> = raw
            .iter()
            .enumerate()
            .map(|(i, &(source, gap, deadline))| {
                at += gap;
                Message {
                    id: MessageId(i as u64),
                    source: SourceId(source % z),
                    class: ClassId(0),
                    bits: 4_000,
                    arrival: Ticks(at),
                    deadline: Ticks(deadline),
                }
            })
            .collect();
        let fast = run_once(proto, z, medium, &arrivals, to_completion, true);
        let reference = run_once(proto, z, medium, &arrivals, to_completion, false);
        prop_assert_eq!(&fast, &reference);
    }

    /// The fault subsystem is a strict superset: an engine carrying a
    /// zero-fault plan — whether the literal empty plan or one generated
    /// from all-zero rates — is bitwise indistinguishable from an engine
    /// with no plan at all, in both the fast-forwarding and reference
    /// steppers, for every protocol and collision mode.
    #[test]
    fn zero_fault_plan_is_bitwise_invisible(
        z in 2u32..6,
        raw in prop::collection::vec(
            (0u32..8, 0u64..600_000, 300_000u64..9_000_000),
            0..16,
        ),
        proto_pick in 0usize..5,
        arbitrating in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let proto = match proto_pick {
            0 => Proto::Ddcr { theta: 0 },
            1 => Proto::Ddcr { theta: 2 },
            2 => Proto::CsmaCd { seed: 7 },
            3 => Proto::Dcr,
            _ => Proto::NpEdf,
        };
        let z = if matches!(proto, Proto::NpEdf) { 1 } else { z };
        let mut medium = MediumConfig::ethernet();
        medium.collision_mode = if arbitrating {
            CollisionMode::Arbitrating
        } else {
            CollisionMode::Destructive
        };
        let mut at = 0u64;
        let arrivals: Vec<Message> = raw
            .iter()
            .enumerate()
            .map(|(i, &(source, gap, deadline))| {
                at += gap;
                Message {
                    id: MessageId(i as u64),
                    source: SourceId(source % z),
                    class: ClassId(0),
                    bits: 4_000,
                    arrival: Ticks(at),
                    deadline: Ticks(deadline),
                }
            })
            .collect();
        let generated = FaultPlan::generate(seed, z, 50_000, &FaultRates::default());
        prop_assert!(generated.is_empty(), "zero rates must generate no events");

        let plain = run_once(proto, z, medium, &arrivals, true, true);
        let empty_fast =
            run_with_plan(proto, z, medium, &arrivals, true, true, Some(FaultPlan::none()));
        let empty_reference =
            run_with_plan(proto, z, medium, &arrivals, true, false, Some(FaultPlan::none()));
        let generated_fast =
            run_with_plan(proto, z, medium, &arrivals, true, true, Some(generated));
        prop_assert_eq!(&plain, &empty_fast);
        prop_assert_eq!(&plain, &empty_reference);
        prop_assert_eq!(&plain, &generated_fast);
    }
}

/// Idle-heavy deterministic spot check at a production-ish scale: 32 DDCR
/// stations, a handful of widely separated arrivals, a long horizon — the
/// exact shape the perf gate benchmarks — must agree event for event.
#[test]
fn idle_heavy_32_station_network_is_bitwise_equivalent() {
    let medium = MediumConfig::ethernet();
    let arrivals: Vec<Message> = (0..6u64)
        .map(|i| Message {
            id: MessageId(i),
            source: SourceId((i * 5 % 32) as u32),
            class: ClassId(0),
            bits: 8_000,
            arrival: Ticks(i * 7_000_000),
            deadline: Ticks(2_000_000),
        })
        .collect();
    for theta in [0u64, 2] {
        let proto = Proto::Ddcr { theta };
        let fast = run_once(proto, 32, medium, &arrivals, false, true);
        let reference = run_once(proto, 32, medium, &arrivals, false, false);
        assert_eq!(fast, reference, "theta={theta}");
        // The run really was idle-dominated — the fast path had work to do.
        assert!(fast.stats.silence_slots > 10_000);
    }
}
