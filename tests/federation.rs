//! Federation integration tests: the epoch-round federation is bitwise
//! independent of its worker count for random segment topologies and
//! fault plans, and a one-segment federation is bitwise identical to the
//! single-bus engine across the full 2³ fast-forward bisection matrix.

use ddcr_core::{federate, multibus, network};
use ddcr_integration::ddcr_setup;
use ddcr_sim::federation::{run_federation, FederationFaultSpec, FederationOptions};
use ddcr_sim::rng::job_seed;
use ddcr_sim::{FaultPlan, FaultRates, JsonlSink, MediumConfig, Ticks};
use ddcr_traffic::{scenario, ScheduleBuilder};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

const BUDGET: Ticks = Ticks(200_000_000_000);
const HORIZON: Ticks = Ticks(3_000_000);

/// A `Write` handle over a shared buffer, to recover what a consumed
/// [`JsonlSink`] wrote on the single-bus reference side.
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buffer lock").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn fault_rates() -> FaultRates {
    FaultRates {
        corrupt: 2e-3,
        erase: 2e-3,
        crash: 5e-5,
        down_slots: 48,
    }
}

fn fault_horizon(medium: &MediumConfig) -> u64 {
    2 * HORIZON.as_u64() / medium.slot_ticks.max(1)
}

/// A one-segment federation must reproduce the single-bus engine bit for
/// bit — statistics, metrics, and the JSONL event stream — whatever
/// combination of the three fast-forward switches is engaged, and with a
/// seeded fault plan active. This pins `run_until_drained`'s chunked
/// composition: every epoch cut must land exactly where the reference
/// slot loop would have stepped.
#[test]
fn single_segment_matches_single_bus_across_stepper_matrix() {
    let medium = MediumConfig::ethernet();
    let set = scenario::videoconference(5).expect("scenario");
    let (config, allocation) = ddcr_setup(&set, &medium);
    let schedule = ScheduleBuilder::peak_load(&set)
        .build(HORIZON)
        .expect("schedule");
    let seed = 2024;
    let plan = || {
        FaultPlan::generate(
            job_seed(seed, 0),
            set.sources(),
            fault_horizon(&medium),
            &fault_rates(),
        )
    };
    for fast in [false, true] {
        for busy in [false, true] {
            for contention in [false, true] {
                let tag = format!("fast={fast} busy={busy} contention={contention}");
                // Single-bus reference: one engine, one straight run.
                let mut reference = network::build_engine(&set, &config, &allocation, medium)
                    .expect("reference engine");
                reference.set_fast_forward(fast);
                reference.set_busy_fast_forward(busy);
                reference.set_contention_fast_forward(contention);
                reference.enable_metrics();
                reference.set_fault_plan(plan());
                let buf = Arc::new(Mutex::new(Vec::new()));
                reference
                    .set_trace_sink(JsonlSink::headerless(Box::new(SharedBuf(Arc::clone(&buf)))));
                reference
                    .add_arrivals(schedule.iter().copied())
                    .expect("arrivals");
                reference.run_to_completion(BUDGET).expect("drains");
                let reference_metrics = reference.take_metrics();
                reference
                    .take_trace_sink()
                    .expect("sink attached")
                    .finish()
                    .expect("finish");
                let reference_stats = reference.into_stats();
                let reference_trace = buf.lock().expect("buffer lock").clone();

                // Same engine, same switches, chunked into epoch rounds.
                let mut engine = network::build_engine(&set, &config, &allocation, medium)
                    .expect("federated engine");
                engine.set_fast_forward(fast);
                engine.set_busy_fast_forward(busy);
                engine.set_contention_fast_forward(contention);
                let mut options = FederationOptions::new(Ticks(250_000), BUDGET);
                options.metrics = true;
                options.trace = true;
                options.faults = Some(FederationFaultSpec {
                    master_seed: seed,
                    rates: fault_rates(),
                    horizon_slots: fault_horizon(&medium),
                });
                let report =
                    run_federation(vec![engine], vec![schedule.clone()], &[], &options)
                        .expect("federated run");
                assert!(report.completed(), "{tag}");
                let outcome = &report.segments[0];
                assert_eq!(outcome.stats, reference_stats, "{tag}");
                assert_eq!(
                    format!("{:?}", outcome.metrics),
                    format!("{reference_metrics:?}"),
                    "{tag}"
                );
                assert_eq!(
                    outcome.trace.as_deref(),
                    Some(reference_trace.as_slice()),
                    "{tag}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random topology (segment count, fleet size, transit density, epoch
    /// length) × optional random fault plan: a serial run and a maximally
    /// parallel run must agree bit for bit on statistics, metrics, per
    /// segment trace bytes, and the merged trace document.
    #[test]
    fn federation_is_bitwise_jobs_invariant(
        segments in 1usize..=4,
        z in 4u32..=8,
        every in 2u32..=4,
        epoch_us in 200u64..=1500,
        seed in any::<u64>(),
        faulted in any::<bool>(),
    ) {
        let medium = MediumConfig::ethernet();
        let set = scenario::videoconference(z).expect("scenario");
        let (config, allocation) = ddcr_setup(&set, &medium);
        let assignment = multibus::balance_by_load(&set, segments);
        let routes = federate::transit_routes(&set, &assignment, every);
        let schedule = ScheduleBuilder::peak_load(&set)
            .build(HORIZON)
            .expect("schedule");
        let run = |jobs: usize| {
            let mut options =
                FederationOptions::new(Ticks(epoch_us * 1_000), BUDGET);
            options.workers = jobs;
            options.metrics = true;
            options.trace = true;
            if faulted {
                options.faults = Some(FederationFaultSpec {
                    master_seed: seed,
                    rates: fault_rates(),
                    horizon_slots: fault_horizon(&medium),
                });
            }
            federate::run_segments(
                &set,
                schedule.clone(),
                &assignment,
                &routes,
                &config,
                &allocation,
                medium,
                &options,
            )
            .expect("federated run")
        };
        let serial = run(1);
        prop_assert!(serial.completed());
        prop_assert_eq!(serial.scheduled(), schedule.len());
        if segments > 1 {
            prop_assert!(serial.handoffs > 0, "transit classes must bridge");
        } else {
            prop_assert_eq!(serial.handoffs, 0);
        }
        let parallel = run(8);
        prop_assert_eq!(serial.rounds, parallel.rounds);
        prop_assert_eq!(serial.handoffs, parallel.handoffs);
        for (a, b) in serial.segments.iter().zip(&parallel.segments) {
            prop_assert_eq!(&a.stats, &b.stats);
            prop_assert_eq!(a.scheduled, b.scheduled);
            prop_assert_eq!(a.injected, b.injected);
            prop_assert_eq!(a.fault_events, b.fault_events);
            prop_assert_eq!(
                format!("{:?}", a.metrics),
                format!("{:?}", b.metrics)
            );
            prop_assert_eq!(&a.trace, &b.trace);
        }
        let mut left = Vec::new();
        let mut right = Vec::new();
        serial.write_trace(&mut left).expect("write");
        parallel.write_trace(&mut right).expect("write");
        prop_assert_eq!(left, right);
    }
}
