//! Determinism and replica-consistency properties: a simulation is a pure
//! function of (configuration, seed), and every CSMA/DDCR station keeps an
//! identical replica of the shared protocol state.

use ddcr_core::{DdcrConfig, DdcrStation, StaticAllocation};
use ddcr_integration::run_ddcr;
use ddcr_sim::{
    Action, ClassId, Frame, MediumConfig, Message, MessageId, Observation, SourceId, Station,
    Ticks,
};
use ddcr_traffic::{scenario, ScheduleBuilder};

fn trace_of(seed: u64, intensity: f64) -> Vec<(u64, u64)> {
    let set = scenario::uniform(4, 8_000, Ticks(4_000_000), 0.4).unwrap();
    let schedule = ScheduleBuilder::bounded_random(&set, intensity, seed)
        .unwrap()
        .build(Ticks(8_000_000))
        .unwrap();
    let stats = run_ddcr(&set, schedule, MediumConfig::ethernet());
    stats
        .deliveries
        .iter()
        .map(|d| (d.message.id.0, d.completed_at.as_u64()))
        .collect()
}

#[test]
fn identical_inputs_identical_traces() {
    assert_eq!(trace_of(11, 0.7), trace_of(11, 0.7));
}

#[test]
fn different_seeds_differ() {
    // Different random workloads: almost surely different traces.
    assert_ne!(trace_of(11, 0.7), trace_of(12, 0.7));
}

/// Drives N station replicas by hand through a long mixed workload,
/// asserting the shared-state digests agree after every slot.
#[test]
fn replicas_never_diverge_over_long_runs() {
    let z = 4u32;
    let medium = MediumConfig::ethernet();
    let config = DdcrConfig::for_sources(z, Ticks(100_000)).unwrap();
    let allocation = StaticAllocation::round_robin(config.static_tree, z).unwrap();
    let mut stations: Vec<DdcrStation> = (0..z)
        .map(|i| {
            DdcrStation::new(SourceId(i), config, allocation.clone(), medium.overhead_bits)
                .unwrap()
        })
        .collect();

    // Mixed arrivals: bursts, same class, staggered, late.
    let mut arrivals: Vec<Message> = Vec::new();
    let mut id = 0u64;
    for wave in 0..6u64 {
        for s in 0..z {
            arrivals.push(Message {
                id: MessageId(id),
                source: SourceId(s),
                class: ClassId(0),
                bits: 4_000 + 500 * u64::from(s),
                arrival: Ticks(wave * 700_000 + u64::from(s) * 13),
                deadline: Ticks(500_000 + wave * 111_111),
            });
            id += 1;
        }
    }
    arrivals.sort_by_key(|m| m.arrival);

    let mut now = Ticks::ZERO;
    let mut next_arrival = 0usize;
    let mut step = 0u64;
    while next_arrival < arrivals.len()
        || stations.iter().any(|s| s.backlog() > 0)
        || step < 5_000
    {
        assert!(step < 100_000, "workload failed to drain");
        step += 1;
        while next_arrival < arrivals.len() && arrivals[next_arrival].arrival <= now {
            let m = arrivals[next_arrival];
            stations[m.source.0 as usize].deliver(m);
            next_arrival += 1;
        }
        let actions: Vec<Action> = stations.iter_mut().map(|s| s.poll(now)).collect();
        let frames: Vec<Frame> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Transmit(f) => Some(*f),
                Action::Idle => None,
            })
            .collect();
        let (obs, advance) = match frames.len() {
            0 => (Observation::Silence, Ticks(medium.slot_ticks)),
            1 => (Observation::Busy(frames[0]), frames[0].duration()),
            _ => (
                Observation::Collision { survivor: None },
                Ticks(medium.slot_ticks),
            ),
        };
        let next_free = now + advance;
        for s in &mut stations {
            s.observe(now, next_free, &obs);
        }
        let digests: Vec<String> = stations.iter().map(|s| s.shared_state_digest()).collect();
        for d in &digests[1..] {
            assert_eq!(&digests[0], d, "divergence at step {step}, t = {now}");
        }
        now = next_free;
    }
    // Everything injected must eventually have been drained.
    assert_eq!(next_arrival, arrivals.len());
    assert!(stations.iter().all(|s| s.backlog() == 0), "undrained backlog");
}

/// The parallel sweep runner's core guarantee: the same grid run with 1
/// worker and with 8 workers yields `RunSummary` vectors that are equal
/// field for field (including the float fields, compared exactly). Covers
/// all four protocols — including the stochastic CSMA-CD baseline, whose
/// per-job seed must derive from the job index, not from scheduling.
#[test]
fn sweep_results_identical_across_worker_counts() {
    use ddcr_baseline::QueueDiscipline;
    use ddcr_bench::harness::{default_ddcr_config, ProtocolKind};
    use ddcr_bench::sweep::{SweepConfig, SweepGrid};

    let medium = MediumConfig::ethernet();
    let mut grid = SweepGrid::new();
    for (z, load) in [(4u32, 0.2f64), (4, 0.4), (8, 0.3)] {
        let set = scenario::uniform(z, 8_000, Ticks(5_000_000), load).unwrap();
        let schedule = ScheduleBuilder::peak_load(&set)
            .build(Ticks(2_000_000))
            .unwrap();
        let kinds = [
            ProtocolKind::Ddcr(default_ddcr_config(&set, &medium)),
            ProtocolKind::CsmaCd(QueueDiscipline::Fifo, 0),
            ProtocolKind::CsmaCd(QueueDiscipline::Edf, 0),
            ProtocolKind::Dcr(QueueDiscipline::Fifo),
            ProtocolKind::NpEdf,
        ];
        grid.push_comparison(
            &format!("z={z}/load={load}"),
            &kinds,
            &set,
            &schedule,
            medium,
            Ticks(1_000_000_000),
        );
    }

    let serial = grid
        .run(SweepConfig::new(1, 42))
        .summaries()
        .expect("serial sweep");
    let parallel = grid
        .run(SweepConfig::new(8, 42))
        .summaries()
        .expect("parallel sweep");

    assert_eq!(serial.len(), grid.len());
    // Field-for-field: RunSummary derives PartialEq over every field.
    assert_eq!(serial, parallel);

    // And an explicit spot-check that the float fields really are bitwise
    // equal, not merely approximately so.
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.miss_ratio.to_bits(), b.miss_ratio.to_bits(), "{}", a.protocol);
        assert_eq!(
            a.mean_latency.to_bits(),
            b.mean_latency.to_bits(),
            "{}",
            a.protocol
        );
        assert_eq!(
            a.utilization.to_bits(),
            b.utilization.to_bits(),
            "{}",
            a.protocol
        );
    }
}

/// Re-running the same sweep twice in one process must also be stable
/// (the table cache warms up on the first run; cached tables must not
/// change any result).
#[test]
fn sweep_results_stable_across_repeated_runs() {
    use ddcr_baseline::QueueDiscipline;
    use ddcr_bench::harness::{default_ddcr_config, ProtocolKind};
    use ddcr_bench::sweep::{SweepConfig, SweepGrid};

    let medium = MediumConfig::ethernet();
    let set = scenario::uniform(4, 8_000, Ticks(5_000_000), 0.3).unwrap();
    let schedule = ScheduleBuilder::peak_load(&set)
        .build(Ticks(2_000_000))
        .unwrap();
    let kinds = [
        ProtocolKind::Ddcr(default_ddcr_config(&set, &medium)),
        ProtocolKind::CsmaCd(QueueDiscipline::Fifo, 0),
        ProtocolKind::NpEdf,
    ];
    let mut grid = SweepGrid::new();
    grid.push_comparison("repeat", &kinds, &set, &schedule, medium, Ticks(1_000_000_000));
    let first = grid.run(SweepConfig::new(2, 7)).summaries().unwrap();
    let second = grid.run(SweepConfig::new(3, 7)).summaries().unwrap();
    assert_eq!(first, second);
}

#[test]
fn csma_cd_trace_is_seed_deterministic() {
    use ddcr_baseline::{CsmaCdStation, QueueDiscipline};
    let run = |seed: u64| {
        let medium = MediumConfig::ethernet();
        let set = scenario::uniform(4, 8_000, Ticks(4_000_000), 0.5).unwrap();
        let schedule = ScheduleBuilder::peak_load(&set).build(Ticks(4_000_000)).unwrap();
        let mut engine = ddcr_sim::Engine::new(medium).unwrap();
        for i in 0..4 {
            engine.add_station(Box::new(CsmaCdStation::new(
                SourceId(i),
                medium,
                QueueDiscipline::Fifo,
                seed,
            )));
        }
        engine.add_arrivals(schedule).unwrap();
        engine.run_to_completion(Ticks(100_000_000_000)).unwrap();
        engine
            .into_stats()
            .deliveries
            .iter()
            .map(|d| (d.message.id.0, d.completed_at.as_u64()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(5), run(5));
}
