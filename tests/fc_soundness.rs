//! Property-based soundness of the feasibility conditions (§4.3): for
//! randomly drawn HRTDM instances, whenever the analytic check accepts, the
//! adversarial peak-load simulation exhibits **zero** deadline misses and
//! stays below `B_DDCR` — the paper's central correctness claim.

use ddcr_core::{feasibility, network, DdcrConfig, StaticAllocation};
use ddcr_sim::{ClassId, MediumConfig, SourceId, Ticks};
use ddcr_traffic::{DensityBound, MessageClass, MessageSet, ScheduleBuilder};
use proptest::prelude::*;

/// A random but well-formed HRTDM instance: z sources, one or two classes
/// each, parameters drawn from ranges wide enough to straddle the
/// feasibility frontier.
fn instance_strategy() -> impl Strategy<Value = MessageSet> {
    (2u32..=6, 1usize..=2, 0u64..=u64::MAX).prop_map(|(z, classes_per_source, seed)| {
        // Simple deterministic expansion of the seed into parameters.
        let mut s = seed;
        let mut next = move |range: std::ops::RangeInclusive<u64>| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            range.start() + (s >> 33) % (range.end() - range.start() + 1)
        };
        let mut classes = Vec::new();
        let mut id = 0u32;
        for source in 0..z {
            for _ in 0..classes_per_source {
                let bits = next(500..=20_000);
                let a = next(1..=3);
                let w = Ticks(next(500_000..=4_000_000));
                let deadline = Ticks(next(200_000..=8_000_000));
                classes.push(MessageClass {
                    id: ClassId(id),
                    name: format!("c{id}"),
                    source: SourceId(source),
                    bits,
                    deadline,
                    density: DensityBound::new(a, w).expect("valid bound"),
                });
                id += 1;
            }
        }
        MessageSet::new(z, classes).expect("valid set")
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case runs a full protocol simulation
        .. ProptestConfig::default()
    })]

    /// FC-accepted instances never miss under the adversarial workload,
    /// and the measured worst latency stays within every class's bound.
    #[test]
    fn feasible_instances_never_miss(set in instance_strategy()) {
        let medium = MediumConfig::ethernet();
        let c = network::recommended_class_width(&set, 64, &medium);
        let config = DdcrConfig::for_sources(set.sources(), c).expect("config");
        let allocation = StaticAllocation::round_robin(config.static_tree, set.sources())
            .expect("allocation");
        let report = feasibility::evaluate(&set, &config, &allocation, &medium)
            .expect("feasibility");
        prop_assume!(report.feasible());

        // Adversarial peak load over several windows.
        let max_w = set.classes().iter().map(|cl| cl.density.w.as_u64()).max().unwrap();
        let schedule = ScheduleBuilder::peak_load(&set)
            .build(Ticks(max_w * 3))
            .expect("schedule");
        let n = schedule.len();
        let stats = network::run(
            &set,
            schedule,
            &config,
            &allocation,
            medium,
            network::RunLimit::Completion(Ticks(500_000_000_000)),
        )
        .expect("run");
        prop_assert_eq!(stats.deliveries.len(), n, "lost messages");
        prop_assert_eq!(stats.deadline_misses(), 0, "feasible instance missed");

        // Per-class measured worst latency <= per-class analytic bound.
        for class_report in &report.per_class {
            let worst = stats
                .deliveries
                .iter()
                .filter(|d| d.message.class == class_report.class)
                .map(|d| d.latency().as_u64())
                .max()
                .unwrap_or(0);
            prop_assert!(
                (worst as f64) <= class_report.bound + 1e-6,
                "class {} measured {} > bound {}",
                class_report.class, worst, class_report.bound
            );
        }
    }

    /// The bound is monotone in the deadline: tightening every deadline
    /// can only shrink slack (never make an infeasible set feasible).
    #[test]
    fn tightening_deadlines_never_helps(set in instance_strategy()) {
        let medium = MediumConfig::ethernet();
        let c = network::recommended_class_width(&set, 64, &medium);
        let config = DdcrConfig::for_sources(set.sources(), c).expect("config");
        let allocation = StaticAllocation::round_robin(config.static_tree, set.sources())
            .expect("allocation");
        let report = feasibility::evaluate(&set, &config, &allocation, &medium)
            .expect("feasibility");

        let halved_classes: Vec<MessageClass> = set
            .classes()
            .iter()
            .map(|cl| MessageClass {
                deadline: Ticks((cl.deadline.as_u64() / 2).max(1)),
                ..cl.clone()
            })
            .collect();
        let halved = MessageSet::new(set.sources(), halved_classes).expect("set");
        let halved_report = feasibility::evaluate(&halved, &config, &allocation, &medium)
            .expect("feasibility");
        prop_assert!(
            !halved_report.feasible() || report.feasible(),
            "halving deadlines must not turn an infeasible set feasible"
        );
    }
}
