//! Cross-protocol and cross-layer checks: the analytic machinery
//! (ddcr-tree), the protocols (ddcr-core / ddcr-baseline) and the
//! simulator agree with one another.

use ddcr_baseline::{DcrStation, NpEdfOracle, QueueDiscipline};
use ddcr_integration::run_ddcr;
use ddcr_sim::{
    ClassId, Engine, MediumConfig, Message, MessageId, SourceId, Ticks,
};
use ddcr_traffic::scenario;
use ddcr_tree::{closed_form, TreeShape};

fn burst(z: u32, per_source: u64, bits: u64, deadline: u64) -> Vec<Message> {
    let mut out = Vec::new();
    let mut id = 0u64;
    for s in 0..z {
        for _ in 0..per_source {
            out.push(Message {
                id: MessageId(id),
                source: SourceId(s),
                class: ClassId(0),
                bits,
                arrival: Ticks(0),
                deadline: Ticks(deadline),
            });
            id += 1;
        }
    }
    out
}

/// The DCR epoch's collision count is exactly the tree-analysis value:
/// simultaneous messages from k of 8 stations collide `ξ_k^8` times
/// (the initial collision being the root).
#[test]
fn dcr_epoch_cost_matches_xi() {
    let medium = MediumConfig::ethernet();
    let shape = TreeShape::new(2, 3).unwrap();
    for k in 2u64..=8 {
        // Place the k active stations on a worst-case witness subset,
        // mirrored so the rightmost leaf (7) is active: the epoch then ends
        // exactly at the last delivery, with no trailing probes cut off by
        // run_to_completion and no post-epoch idle silence counted.
        let (expected, witness) =
            ddcr_tree::search::worst_case_exhaustive(shape, k).unwrap();
        let mirrored: Vec<u64> = witness.iter().map(|&leaf| 7 - leaf).collect();
        assert!(mirrored.contains(&7), "mirror must include the last leaf");

        let mut engine = Engine::new(medium).unwrap();
        for i in 0..8u32 {
            engine.add_station(Box::new(
                DcrStation::new(SourceId(i), 8, medium, QueueDiscipline::Fifo).unwrap(),
            ));
        }
        let arrivals: Vec<Message> = mirrored
            .iter()
            .enumerate()
            .map(|(i, &station)| Message {
                id: MessageId(i as u64),
                source: SourceId(station as u32),
                class: ClassId(0),
                bits: 8_000,
                arrival: Ticks(0),
                deadline: Ticks(100_000_000),
            })
            .collect();
        engine.add_arrivals(arrivals).unwrap();
        engine.run_to_completion(Ticks(1_000_000_000)).unwrap();
        // Total search slots (collision slots + empty probe slots) must be
        // exactly ξ_k^8: the protocol's epoch pays what the analysis says.
        let total_search = engine.stats().collisions + engine.stats().silence_slots;
        assert_eq!(
            total_search, expected,
            "k={k}: measured {total_search} != xi {expected}"
        );
    }
}

/// On a single-burst workload the NP-EDF oracle is a lower bound for DDCR
/// on every percentile, and both serve in global EDF order.
#[test]
fn oracle_lower_bounds_ddcr_everywhere() {
    let medium = MediumConfig::ethernet();
    let set = scenario::uniform(4, 8_000, Ticks(50_000_000), 0.3).unwrap();
    let schedule = burst(4, 3, 8_000, 50_000_000);
    let ddcr = run_ddcr(&set, schedule.clone(), medium);
    let oracle =
        NpEdfOracle::run_schedule(medium, schedule, Ticks(100_000_000_000)).unwrap();
    assert_eq!(ddcr.deliveries.len(), oracle.deliveries.len());
    let mut ddcr_lat: Vec<u64> = ddcr.deliveries.iter().map(|d| d.latency().as_u64()).collect();
    let mut oracle_lat: Vec<u64> =
        oracle.deliveries.iter().map(|d| d.latency().as_u64()).collect();
    ddcr_lat.sort_unstable();
    oracle_lat.sort_unstable();
    for (o, d) in oracle_lat.iter().zip(&ddcr_lat) {
        assert!(o <= d, "oracle percentile {o} above ddcr {d}");
    }
}

/// Cross-protocol smoke test over a spread of workloads: the NP-EDF
/// oracle (centralized, zero contention, deadline-optimal among
/// non-preemptive work-conserving schedulers) never reports **more**
/// misses than distributed CSMA/DDCR on the same workload, where misses
/// count deadline overruns among deliveries plus undelivered messages.
#[test]
fn oracle_never_misses_more_than_ddcr() {
    use ddcr_bench::harness::{default_ddcr_config, run_protocol, ProtocolKind};
    use ddcr_traffic::ScheduleBuilder;

    let medium = MediumConfig::ethernet();
    for (z, load, deadline) in [
        (4u32, 0.2f64, 5_000_000u64),
        (4, 0.5, 2_000_000),
        (8, 0.4, 3_000_000),
        (8, 0.8, 1_000_000), // overloaded: both protocols will miss
        (16, 0.6, 2_000_000),
    ] {
        let set = scenario::uniform(z, 8_000, Ticks(deadline), load).unwrap();
        let schedule = ScheduleBuilder::peak_load(&set)
            .build(Ticks(4_000_000))
            .unwrap();
        let budget = Ticks(10_000_000_000);
        let ddcr = run_protocol(
            &ProtocolKind::Ddcr(default_ddcr_config(&set, &medium)),
            &set,
            &schedule,
            medium,
            budget,
        )
        .unwrap();
        let oracle = run_protocol(&ProtocolKind::NpEdf, &set, &schedule, medium, budget).unwrap();
        assert_eq!(oracle.scheduled, ddcr.scheduled);
        assert!(
            oracle.misses <= ddcr.misses,
            "z={z} load={load} deadline={deadline}: oracle missed {} > ddcr {}",
            oracle.misses,
            ddcr.misses
        );
    }
}

/// DDCR serves strictly by deadline class across sources: with distinct
/// deadline classes, delivery order equals EDF order even though the
/// sources are distributed.
#[test]
fn distributed_edf_order_across_sources() {
    let medium = MediumConfig::ethernet();
    let set = scenario::uniform(4, 8_000, Ticks(50_000_000), 0.2).unwrap();
    // Deadlines spaced by far more than one class width each.
    let mut schedule = Vec::new();
    let spacing = 3_000_000u64;
    for (i, source) in [2u32, 0, 3, 1].iter().enumerate() {
        schedule.push(Message {
            id: MessageId(i as u64),
            source: SourceId(*source),
            class: ClassId(0),
            bits: 8_000,
            arrival: Ticks(0),
            deadline: Ticks(30_000_000 - spacing * i as u64),
        });
    }
    let stats = run_ddcr(&set, schedule, medium);
    let order: Vec<u64> = stats.deliveries.iter().map(|d| d.message.id.0).collect();
    assert_eq!(order, vec![3, 2, 1, 0], "not EDF order: {order:?}");
}

/// Burst draining time under DDCR stays within the analytic budget:
/// transmissions + slot-time × (multi-tree search bound + time-tree term).
#[test]
fn burst_makespan_within_analytic_budget() {
    let medium = MediumConfig::ethernet();
    let z = 8u32;
    let per_source = 2u64;
    let set = scenario::uniform(z, 8_000, Ticks(60_000_000), 0.3).unwrap();
    let schedule = burst(z, per_source, 8_000, 60_000_000);
    let n = schedule.len() as u64;
    let stats = run_ddcr(&set, schedule, medium);
    let makespan = stats
        .deliveries
        .iter()
        .map(|d| d.completed_at.as_u64())
        .max()
        .unwrap();
    // Generous analytic budget: wire time + ξ-bound searches on the static
    // tree for all n messages over ⌈n/q⌉… use the single-tree peak as a
    // conservative per-message cost.
    let wire = 8_000 + medium.overhead_bits;
    let static_tree = TreeShape::new(4, 2).unwrap(); // q = 16 ≥ z
    let per_round = closed_form::xi_peak(static_tree) + closed_form::xi_two(TreeShape::new(4, 3).unwrap());
    let budget = n * wire + medium.slot_ticks * (n * per_round + 64);
    assert!(
        makespan <= budget,
        "makespan {makespan} exceeded analytic budget {budget}"
    );
}
