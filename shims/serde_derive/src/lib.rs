//! No-op `Serialize`/`Deserialize` derives for the offline serde shim.
//! The workspace only uses the derives as declarative markers (no code
//! actually serializes anything), so expanding to nothing is sound.

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
