//! Offline stand-in for `parking_lot`: `Mutex` and `RwLock` wrappers over
//! `std::sync` with parking_lot's non-poisoning API (`lock()` returns the
//! guard directly; a poisoned lock is recovered transparently).

use std::sync::{self, PoisonError};

/// Mutual exclusion lock; `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

/// RAII guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Readers-writer lock; `read()`/`write()` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

/// RAII shared guard returned by [`RwLock::read`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII exclusive guard returned by [`RwLock::write`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
