//! Offline stand-in for `crossbeam`: scoped threads over
//! `std::thread::scope` (stable since 1.63) and multi-producer channels
//! over `std::sync::mpsc`, behind crossbeam's module paths and call
//! shapes (`crossbeam::thread::scope(|s| { s.spawn(|_| ...); })`,
//! `crossbeam::channel::unbounded()`).

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Handle passed to the `scope` closure and to every spawned thread.
    #[derive(Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a `&Scope` (which
        /// crossbeam provides for nested spawns), so existing
        /// `scope.spawn(|_| ...)` call sites compile unchanged.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Join handle for a scoped thread.
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// caller's stack. Returns `Err` with the panic payload if the scope
    /// closure or any unjoined spawned thread panicked (matching
    /// crossbeam's contract of not unwinding through the caller).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let scope = Scope { inner: s };
                f(&scope)
            })
        }))
    }
}

/// Multi-producer single-consumer channels (`crossbeam::channel`),
/// sufficient for fan-out/fan-in worker pools.
pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Cloneable sending half.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a value; fails only when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks for the next value; fails when all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Iterates until every sender is dropped.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_all_threads() {
        let mut data = vec![0u64; 8];
        super::thread::scope(|s| {
            for (i, slot) in data.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u64 * 2);
            }
        })
        .unwrap();
        assert_eq!(data, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn scope_reports_panics_as_err() {
        let result = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn channel_fan_in() {
        let (tx, rx) = super::channel::unbounded();
        super::thread::scope(|s| {
            for i in 0..4u64 {
                let tx = tx.clone();
                s.spawn(move |_| tx.send(i).unwrap());
            }
        })
        .unwrap();
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
