//! Offline stand-in for `serde`: marker traits plus no-op derives. The
//! workspace derives `Serialize`/`Deserialize` on value types but never
//! serializes them (CSV output goes through `Display`), so empty
//! expansions satisfy every use site.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
