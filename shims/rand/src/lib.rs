//! Offline stand-in for the `rand` crate: a deterministic SplitMix64
//! generator behind the small slice of the `rand` 0.8 API this workspace
//! uses (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range,
//! gen_bool}`). Bit streams differ from the real crate, but every stream
//! is a pure function of its 64-bit seed, which is all the simulator
//! relies on.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from raw generator output (the shim's
/// analogue of sampling from the `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

/// Maps 64 random bits onto [0, 1) with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_sint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}
impl_range_sint!(i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: a SplitMix64 stream. Stands in for
    /// `rand::rngs::StdRng`; same-seed streams are bitwise identical.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5u64..17);
            assert!((5..17).contains(&v));
            let v = rng.gen_range(0u64..=3);
            assert!(v <= 3);
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let i = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_floats_cover_zero_one() {
        let mut rng = StdRng::seed_from_u64(5);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
