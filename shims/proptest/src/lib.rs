//! Offline stand-in for `proptest`: deterministic strategy sampling
//! without shrinking. Supports the subset this workspace uses: the
//! `proptest!` macro (with optional `#![proptest_config(..)]`), range and
//! tuple strategies, `Just`, `any`, `prop_oneof!`, `prop::collection::vec`,
//! and the `prop_map` / `prop_flat_map` / `prop_filter` combinators.
//!
//! Failing cases panic with the `prop_assert*` message; they are not
//! shrunk. Sampling is seeded from a fixed constant (overridable via the
//! `PROPTEST_SHIM_SEED` environment variable), so runs are reproducible.

pub mod strategy;

/// Runner configuration (`proptest::test_runner::ProptestConfig`).
pub mod test_runner {
    /// How many accepted cases each property runs, and how many rejections
    /// (filter misses + `prop_assume!` failures) to tolerate on the way.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to execute.
        pub cases: u32,
        /// Upper bound on total rejected samples before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl ProptestConfig {
        /// A default config with a custom case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::{Strategy, TestRng};

    /// Inclusive-exclusive size bound for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a vector of `size` samples of `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Values with a canonical strategy (`any::<T>()`).
pub mod arbitrary {
    use crate::strategy::{Strategy, TestRng};
    use rand::StandardSample;

    /// Marker for types `any::<T>()` can produce.
    pub trait Arbitrary: StandardSample {}
    impl Arbitrary for u8 {}
    impl Arbitrary for u16 {}
    impl Arbitrary for u32 {}
    impl Arbitrary for u64 {}
    impl Arbitrary for usize {}
    impl Arbitrary for i8 {}
    impl Arbitrary for i16 {}
    impl Arbitrary for i32 {}
    impl Arbitrary for i64 {}
    impl Arbitrary for bool {}
    impl Arbitrary for f64 {}

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> Option<T> {
            Some(rng.gen::<T>())
        }
    }

    /// The canonical strategy for `T` (uniform over the value space).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Namespace mirror so `prop::collection::vec(...)` resolves via the
/// prelude, as in real proptest.
pub mod prop {
    pub use crate::collection;
}

/// The conventional glob-import surface.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Asserts a condition inside a property; panics with context on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Rejects the current case (the runner draws a replacement). Only valid
/// directly inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::option::Option::None;
        }
    };
}

/// Uniform choice among boxed strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::strategy::TestRng::deterministic(stringify!($name));
            let mut __accepted: u32 = 0;
            let mut __rejected: u32 = 0;
            while __accepted < __config.cases {
                let __outcome: ::core::option::Option<()> = (|| {
                    $(
                        let $pat = match $crate::strategy::Strategy::sample(&($strat), &mut __rng) {
                            ::core::option::Option::Some(v) => v,
                            ::core::option::Option::None => return ::core::option::Option::None,
                        };
                    )+
                    $body
                    ::core::option::Option::Some(())
                })();
                match __outcome {
                    ::core::option::Option::Some(()) => __accepted += 1,
                    ::core::option::Option::None => {
                        __rejected += 1;
                        assert!(
                            __rejected < __config.max_global_rejects,
                            "property `{}` rejected {} samples before reaching {} cases",
                            stringify!($name), __rejected, __config.cases,
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn composite() -> impl Strategy<Value = (u64, u64)> {
        (2u64..=6, 1u64..=4)
            .prop_filter("first even", |(m, _)| m % 2 == 0)
            .prop_flat_map(|(m, n)| (Just(m * n), 0..=m))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 3u64..9, b in 0.25f64..=0.75, flag in any::<bool>()) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((0.25..=0.75).contains(&b));
            let _ = flag;
        }

        #[test]
        fn combinators_compose((prod, k) in composite()) {
            prop_assert!(prod >= 2);
            prop_assert!(k <= prod);
        }

        #[test]
        fn oneof_and_vec(
            (m, n) in prop_oneof![Just((2u64, 3u32)), Just((4u64, 2u32))],
            xs in prop::collection::vec(0u64..10, 1..5),
        ) {
            prop_assert!(m == 2 || m == 4);
            prop_assert!(n == 2 || n == 3);
            prop_assert!(!xs.is_empty() && xs.len() < 5);
            prop_assume!(m == 2);
            prop_assert_eq!(n, 3);
        }
    }
}
