//! Strategy trait and combinators for the proptest shim.
//!
//! A [`Strategy`] samples values from a deterministic RNG; `None` means
//! the sample was rejected (a `prop_filter` miss) and the runner should
//! draw again. There is no shrinking.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SampleRange, SeedableRng};

/// Deterministic RNG handed to strategies by the `proptest!` runner.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds a stream from the property name (plus `PROPTEST_SHIM_SEED`
    /// when set), so each property samples reproducibly.
    pub fn deterministic(name: &str) -> Self {
        let base = std::env::var("PROPTEST_SHIM_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xDDC4_0001_u64);
        let mut h = base;
        for b in name.bytes() {
            h = h.wrapping_mul(0x100_0000_01B3).wrapping_add(u64::from(b));
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Draws a value uniformly from `range`.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        self.0.gen_range(range)
    }

    /// Draws a uniformly random value.
    pub fn gen<T: rand::StandardSample>(&mut self) -> T {
        self.0.gen::<T>()
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A source of random values of one type, with combinators.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value, or `None` when a filter rejected the sample.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms produced values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Chains a value-dependent follow-up strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying the predicate; rejected samples are
    /// redrawn by the runner.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<T::Value> {
        let first = self.inner.sample(rng)?;
        (self.f)(first).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)] // kept for parity with proptest's diagnostics
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        let value = self.inner.sample(rng)?;
        if (self.f)(&value) {
            Some(value)
        } else {
            None
        }
    }
}

/// The sampling function a [`BoxedStrategy`] erases to.
type SampleFn<V> = Box<dyn Fn(&mut TestRng) -> Option<V>>;

/// Type-erased strategy; see [`Strategy::boxed`].
pub struct BoxedStrategy<V>(SampleFn<V>);

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> Option<V> {
        (self.0)(rng)
    }
}

/// Uniform choice among strategies of a common value type
/// (`prop_oneof!`).
#[derive(Debug)]
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> Option<V> {
        let pick = rng.gen_range(0..self.arms.len());
        self.arms[pick].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.sample(rng)?,)+))
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
