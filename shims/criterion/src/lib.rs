//! Offline stand-in for `criterion`: enough API for the workspace's
//! benches to compile and run. `Bencher::iter` executes the body once and
//! reports wall-clock time — a smoke-run, not a statistical benchmark.

use std::fmt::Display;
use std::time::Instant;

/// Prevents the optimizer from eliding a value (std's hint).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for one benchmark case (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter rendering.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Timing driver passed to bench bodies.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Runs the routine once, recording its wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// A named group of benchmark cases.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted and ignored (the shim always runs one sample).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs `routine` once with `input`, printing the single-shot time.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        routine(&mut bencher, input);
        println!(
            "bench {}/{id}: {} ns (single shot; criterion shim)",
            self.name, bencher.elapsed_ns
        );
        self
    }

    /// Runs `routine` once, printing the single-shot time.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        routine(&mut bencher);
        println!(
            "bench {}/{id}: {} ns (single shot; criterion shim)",
            self.name, bencher.elapsed_ns
        );
        self
    }

    /// No-op; groups have no deferred state in the shim.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Opens a named group of cases.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Runs a single named bench case.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        routine(&mut bencher);
        println!("bench {id}: {} ns (single shot; criterion shim)", bencher.elapsed_ns);
        self
    }
}

/// Declares a bench group runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given bench groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
